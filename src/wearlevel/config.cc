#include "config.hh"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace wlcrc::wearlevel
{

namespace
{

std::vector<std::string>
splitColons(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, ':'))
        parts.push_back(part);
    return parts;
}

uint64_t
parseU64(const std::string &v, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || v.empty() || end != v.c_str() + v.size())
        throw std::invalid_argument(std::string("bad ") + what +
                                    " '" + v + "'");
    return x;
}

double
parseF64(const std::string &v, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (errno != 0 || v.empty() || end != v.c_str() + v.size())
        throw std::invalid_argument(std::string("bad ") + what +
                                    " '" + v + "'");
    return x;
}

/** Shortest round-trip double (same convention as the spec codec). */
std::string
fmtDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

} // namespace

std::string
formatLeveler(const LevelerConfig &config)
{
    if (!config.active())
        return "none";
    std::ostringstream os;
    os << config.scheme << ":p" << config.period;
    if (config.scheme == "start-gap")
        os << ":r" << config.regionLines;
    else
        os << ":g" << config.pageLines;
    return os.str();
}

LevelerConfig
parseLeveler(const std::string &text)
{
    const auto parts = splitColons(text);
    if (parts.empty())
        throw std::invalid_argument("empty leveler spec");
    LevelerConfig config;
    config.scheme = parts[0];
    if (config.scheme != "none" && config.scheme != "start-gap" &&
        config.scheme != "page-remap") {
        throw std::invalid_argument(
            "unknown leveler scheme '" + config.scheme +
            "' (expected none, start-gap or page-remap)");
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &tok = parts[i];
        if (tok.size() < 2)
            throw std::invalid_argument("bad leveler token '" + tok +
                                        "'");
        const std::string num = tok.substr(1);
        switch (tok[0]) {
          case 'p':
            config.period = parseU64(num, "leveler period");
            break;
          case 'r':
            config.regionLines = static_cast<unsigned>(
                parseU64(num, "leveler region lines"));
            break;
          case 'g':
            config.pageLines = static_cast<unsigned>(
                parseU64(num, "leveler page lines"));
            break;
          default:
            throw std::invalid_argument("bad leveler token '" + tok +
                                        "'");
        }
    }
    if (config.active() &&
        (config.period == 0 || config.regionLines == 0 ||
         config.pageLines == 0)) {
        throw std::invalid_argument(
            "leveler period/region/page values must be positive");
    }
    return config;
}

std::string
formatEndurance(const EnduranceConfig &config)
{
    std::ostringstream os;
    os << config.meanWrites << ':' << fmtDouble(config.cov) << ':'
       << config.eccDeadCells << ':' << config.maxWrites;
    return os.str();
}

EnduranceConfig
parseEndurance(const std::string &text)
{
    const auto parts = splitColons(text);
    if (parts.empty() || parts.size() > 4)
        throw std::invalid_argument("bad endurance spec '" + text +
                                    "' (mean[:cov[:ecc[:cap]]])");
    EnduranceConfig config;
    config.meanWrites = parseU64(parts[0], "endurance mean");
    if (parts.size() > 1)
        config.cov = parseF64(parts[1], "endurance cov");
    if (parts.size() > 2)
        config.eccDeadCells = static_cast<unsigned>(
            parseU64(parts[2], "endurance ecc dead cells"));
    if (parts.size() > 3)
        config.maxWrites = parseU64(parts[3], "endurance write cap");
    if (config.cov < 0.0)
        throw std::invalid_argument(
            "endurance cov must be non-negative");
    return config;
}

} // namespace wlcrc::wearlevel
