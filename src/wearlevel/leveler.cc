#include "leveler.hh"

#include <limits>
#include <map>
#include <stdexcept>

namespace wlcrc::wearlevel
{

namespace
{

/** Identity mapping: byte-identical to running without a leveler. */
class NullLeveler final : public WearLeveler
{
  public:
    std::string name() const override { return "none"; }
    uint64_t map(uint64_t logical) const override { return logical; }
    void
    onWrite(uint64_t, std::vector<LineMove> &) override
    {
    }
    LevelerStats stats() const override { return {}; }
};

/**
 * Start-Gap (Qureshi et al.): each region of N logical lines lives
 * in N+1 physical slots; one slot — the gap — is always unmapped.
 * Every `period` writes to a region, the line before the gap moves
 * into it and the gap walks down one slot; when the gap wraps, the
 * start register advances, so lines slowly rotate through every
 * physical slot of their region.
 *
 * Mapping: slot = (offset + start) mod N, plus one if the slot is
 * at or past the gap; physical line = region * (N + 1) + slot.
 * Regions not yet written use start = 0, gap = N (identity over the
 * first N slots), so map() needs no mutable state.
 */
class StartGapLeveler final : public WearLeveler
{
  public:
    explicit StartGapLeveler(const LevelerConfig &config)
        : period_(config.period), n_(config.regionLines)
    {
    }

    std::string name() const override { return "start-gap"; }

    uint64_t
    map(uint64_t logical) const override
    {
        const uint64_t region = logical / n_;
        const unsigned offset =
            static_cast<unsigned>(logical % n_);
        unsigned start = 0, gap = n_;
        if (const auto it = regions_.find(region);
            it != regions_.end()) {
            start = it->second.start;
            gap = it->second.gap;
        }
        unsigned slot = (offset + start) % n_;
        if (slot >= gap)
            ++slot;
        return region * (n_ + 1) + slot;
    }

    void
    onWrite(uint64_t logical, std::vector<LineMove> &moves) override
    {
        const uint64_t region = logical / n_;
        auto &r =
            regions_.try_emplace(region, Region{0, n_, 0})
                .first->second;
        if (++r.writes % period_ != 0)
            return;
        const uint64_t physBase = region * (n_ + 1);
        const uint64_t logicalBase = region * n_;
        if (r.gap > 0) {
            // Slot gap-1 sits below the gap, so its occupant's
            // offset solves (offset + start) mod N == gap-1.
            const unsigned src = r.gap - 1;
            const unsigned offset = (src + n_ - r.start) % n_;
            moves.push_back({logicalBase + offset, physBase + src,
                             physBase + r.gap});
            --r.gap;
        } else {
            // Gap wrap: slot N's occupant ((N-1 - start) mod N,
            // placed there by the rotation's first move) returns to
            // slot 0, then the whole region is one rotation ahead.
            const unsigned offset = (n_ - 1 + n_ - r.start) % n_;
            moves.push_back({logicalBase + offset, physBase + n_,
                             physBase + 0});
            r.gap = n_;
            r.start = (r.start + 1) % n_;
        }
        ++stats_.remapEvents;
        ++stats_.movesRequested;
    }

    LevelerStats
    stats() const override
    {
        LevelerStats s = stats_;
        // Two line-index registers (start, gap) per active region.
        s.tableBytes = regions_.size() * 8;
        return s;
    }

  private:
    struct Region
    {
        unsigned start;
        unsigned gap;
        uint64_t writes;
    };

    uint64_t period_;
    unsigned n_;
    std::map<uint64_t, Region> regions_;
    LevelerStats stats_;
};

/**
 * Histogram-driven page remapping (ENDURER-style): logical pages of
 * `pageLines` lines map through a permutation table, identity until
 * remapped. Every `period` demand writes, the logical page written
 * most during the interval swaps physical frames with the occupant
 * of the least-written physical frame — unless it already sits
 * there, or its current frame is no more worn than the coldest
 * (swapping would only add traffic). Both pages' lines are copied,
 * which the stats and the caller account as remap overhead.
 *
 * Hot/cold selection iterates std::map (ascending page id), so ties
 * deterministically pick the lowest page.
 */
class PageRemapLeveler final : public WearLeveler
{
  public:
    explicit PageRemapLeveler(const LevelerConfig &config)
        : period_(config.period), pageLines_(config.pageLines)
    {
    }

    std::string name() const override { return "page-remap"; }

    uint64_t
    map(uint64_t logical) const override
    {
        const uint64_t page = logical / pageLines_;
        const auto it = toPhys_.find(page);
        const uint64_t phys = it == toPhys_.end() ? page : it->second;
        return phys * pageLines_ + logical % pageLines_;
    }

    void
    onWrite(uint64_t logical, std::vector<LineMove> &moves) override
    {
        const uint64_t page = logical / pageLines_;
        const uint64_t phys =
            toPhys_.try_emplace(page, page).first->second;
        toLogical_.try_emplace(phys, page);
        ++intervalWrites_[page];
        ++physWrites_[phys];
        if (++sinceSwap_ < period_)
            return;
        sinceSwap_ = 0;
        maybeSwap(moves);
        intervalWrites_.clear();
    }

    LevelerStats
    stats() const override
    {
        LevelerStats s = stats_;
        // One remap-table entry (logical id + physical id) per
        // touched page.
        s.tableBytes = toPhys_.size() * 16;
        return s;
    }

  private:
    void
    maybeSwap(std::vector<LineMove> &moves)
    {
        if (intervalWrites_.empty())
            return;
        // Hottest logical page of the interval (ties: lowest id).
        uint64_t hot = 0, hotCount = 0;
        for (const auto &[page, count] : intervalWrites_) {
            if (count > hotCount) {
                hot = page;
                hotCount = count;
            }
        }
        // Coldest physical frame overall (ties: lowest id).
        uint64_t cold = 0;
        uint64_t coldCount = std::numeric_limits<uint64_t>::max();
        for (const auto &[frame, count] : physWrites_) {
            if (count < coldCount) {
                cold = frame;
                coldCount = count;
            }
        }
        const uint64_t hotFrame = toPhys_[hot];
        if (hotFrame == cold ||
            physWrites_[hotFrame] <= coldCount)
            return;
        const uint64_t coldOccupant = toLogical_[cold];
        for (unsigned i = 0; i < pageLines_; ++i) {
            moves.push_back({hot * pageLines_ + i,
                             hotFrame * pageLines_ + i,
                             cold * pageLines_ + i});
            moves.push_back({coldOccupant * pageLines_ + i,
                             cold * pageLines_ + i,
                             hotFrame * pageLines_ + i});
        }
        toPhys_[hot] = cold;
        toPhys_[coldOccupant] = hotFrame;
        toLogical_[cold] = hot;
        toLogical_[hotFrame] = coldOccupant;
        ++stats_.remapEvents;
        stats_.movesRequested += 2ull * pageLines_;
    }

    uint64_t period_;
    unsigned pageLines_;
    std::map<uint64_t, uint64_t> toPhys_;    //!< logical -> frame
    std::map<uint64_t, uint64_t> toLogical_; //!< frame -> logical
    std::map<uint64_t, uint64_t> intervalWrites_;
    std::map<uint64_t, uint64_t> physWrites_;
    uint64_t sinceSwap_ = 0;
    LevelerStats stats_;
};

} // namespace

std::unique_ptr<WearLeveler>
makeLeveler(const LevelerConfig &config)
{
    if (config.scheme == "none")
        return std::make_unique<NullLeveler>();
    if (config.scheme == "start-gap")
        return std::make_unique<StartGapLeveler>(config);
    if (config.scheme == "page-remap")
        return std::make_unique<PageRemapLeveler>(config);
    throw std::invalid_argument("unknown leveler scheme '" +
                                config.scheme + "'");
}

} // namespace wlcrc::wearlevel
