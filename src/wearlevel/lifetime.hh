/**
 * @file
 * LifetimeEngine: replays a transaction stream through a codec, a
 * WearLeveler and the PCM device until the device dies (or a write
 * cap is hit), under deterministic per-cell endurance budgets.
 *
 * The engine separates two kinds of device traffic:
 *  - demand writes: the trace's own transactions, replayed through a
 *    stock trace::Replayer at the leveler-mapped physical address —
 *    so all per-write metrics (energy, updated cells, disturbance)
 *    stay comparable with non-leveled replays;
 *  - remap copies: physical line moves the leveler requests, written
 *    directly to the device (wear-tracked, energy-accounted in the
 *    device totals, but never folded into demand statistics) and
 *    counted as LifetimeResult::extraWrites.
 *
 * Endurance budgets are derived by hashing (physical line, cell,
 * seed) — no generator state — so a replay's death point is a pure
 * function of the spec, independent of scheduling or backends.
 */

#ifndef WLCRC_WEARLEVEL_LIFETIME_HH
#define WLCRC_WEARLEVEL_LIFETIME_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coset/codec.hh"
#include "pcm/wear.hh"
#include "pcm/write_unit.hh"
#include "trace/replay.hh"
#include "trace/transaction.hh"
#include "wearlevel/config.hh"
#include "wearlevel/leveler.hh"

namespace wlcrc::wearlevel
{

/** Outcome of one lifetime (or leveled single-pass) replay. */
struct LifetimeResult
{
    bool died = false;          //!< a line exceeded its ECC budget
    uint64_t demandWrites = 0;  //!< trace transactions applied
    /** Demand writes completed when the device died; for a device
     *  that survived to the write cap, the writes it survived
     *  (compare `died` to tell the two apart). */
    uint64_t writesToFailure = 0;
    uint64_t extraWrites = 0;   //!< remap copies written
    uint64_t remapEvents = 0;   //!< leveling actions performed
    uint64_t tableBytes = 0;    //!< leveler mapping-state overhead
    uint64_t failedLine = 0;    //!< physical line that died
    unsigned failedCell = 0;    //!< first dead cell of that line
    uint64_t deadCells = 0;     //!< budget-exhausted cells at stop
    uint64_t maxCellWear = 0;   //!< most-worn cell at stop
    double finalWearCov = 0.0;  //!< wear CoV over touched cells
    /**
     * Wear CoV sampled every `covSampleEvery` demand writes. The
     * interval starts small and doubles (decimating the series)
     * whenever 128 samples accumulate, so the timeline is bounded
     * and deterministic at any horizon.
     */
    std::vector<double> wearCovTimeline;
    uint64_t covSampleEvery = 0;
};

/**
 * Deterministic per-cell endurance budget: mean * (1 + cov * z)
 * rounded, floored at 1, with z a standard-normal deviate (clamped
 * to ±3) hashed from (physical line, cell, seed).
 */
uint64_t cellBudget(const EnduranceConfig &endurance, uint64_t seed,
                    uint64_t physLine, unsigned cell);

/** Replays one spec's stream to failure through a leveler. */
class LifetimeEngine
{
  public:
    struct Options
    {
        LevelerConfig leveler;
        EnduranceConfig endurance;
        uint64_t seed = 1;  //!< device + budget seed
        bool vnr = false;   //!< Verify-n-Restore per write
    };

    /** Demand-write cap when EnduranceConfig::maxWrites is 0. */
    static constexpr uint64_t defaultWriteCap = 1000000;

    LifetimeEngine(const coset::LineCodec &codec,
                   const pcm::WriteUnit &unit, Options opts);
    ~LifetimeEngine();

    /**
     * Replay @p txns — once when @p loopUntilDeath is false, or
     * repeatedly from the top until the device dies or the write
     * cap is reached. Death checks run only when the endurance
     * config is active. May be called once per engine.
     */
    LifetimeResult run(const std::vector<trace::WriteTransaction> &txns,
                       bool loopUntilDeath);

    /** Demand-write replay metrics (remap copies excluded). */
    const trace::ReplayResult &replayResult() const;

    /** Per-cell wear including remap copies (physical addresses). */
    const pcm::WearTracker &wearTracker() const { return wear_; }

  private:
    bool checkLine(uint64_t physLine, LifetimeResult &res);
    void applyMoves(const std::vector<LineMove> &moves,
                    LifetimeResult &res);
    void sampleCov(LifetimeResult &res);

    const coset::LineCodec &codec_;
    Options opts_;
    trace::Replayer replayer_;
    pcm::WearTracker wear_;
    std::unique_ptr<WearLeveler> leveler_;
    /** Last payload written per logical line: what a remap copy
     *  re-encodes at the new physical location. */
    std::unordered_map<uint64_t, Line512> lastData_;
    /** Budgets are hashed lazily per line and cached. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> budgets_;
    std::unordered_map<uint64_t, unsigned> deadPerLine_;
    coset::EncodeScratch scratch_;
    pcm::TargetLine staging_;
    bool ran_ = false;
};

/**
 * Deterministic hot-spot trace for wear-leveling evaluation:
 * @p writes transactions over @p lines distinct lines, where a
 * `hotFraction` share of writes targets the first max(1, lines/8)
 * lines. Old data is tracked per line, so differential writes see
 * consistent prior contents. Purely a function of the arguments.
 */
std::vector<trace::WriteTransaction>
hotspotTrace(uint64_t lines, uint64_t writes, uint64_t seed,
             double hotFraction = 0.8);

} // namespace wlcrc::wearlevel

#endif // WLCRC_WEARLEVEL_LIFETIME_HH
