/**
 * @file
 * WearLeveler: the remapping layer between the replayer (the
 * controller side of a write) and the PCM device. A leveler owns a
 * logical-to-physical line mapping and decides, per demand write,
 * which physical lines must be copied to keep wear spread out.
 *
 * The leveler never touches the device itself — it returns the line
 * copies it wants as LineMove records and the caller (LifetimeEngine)
 * performs them, so the leveler stays a pure, deterministic mapping
 * machine and the engine keeps demand-write statistics clean of
 * remap traffic.
 *
 * Determinism: every scheme keeps its iterable state in std::map
 * (never unordered containers), so tie-breaking in hot/cold
 * selection is a pure function of the write stream.
 */

#ifndef WLCRC_WEARLEVEL_LEVELER_HH
#define WLCRC_WEARLEVEL_LEVELER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wearlevel/config.hh"

namespace wlcrc::wearlevel
{

/**
 * One physical line copy a leveling action requires: the data of
 * @p logical moves from physical line @p fromPhys to @p toPhys. The
 * mapping already reflects the move when it is handed out; the
 * caller replays the copy (a real device write, counted as remap
 * overhead, never as a demand write).
 */
struct LineMove
{
    uint64_t logical = 0;
    uint64_t fromPhys = 0;
    uint64_t toPhys = 0;
};

/** Overhead accounting of a leveler. */
struct LevelerStats
{
    uint64_t movesRequested = 0; //!< line copies handed to the caller
    uint64_t remapEvents = 0;    //!< gap moves / page swaps performed
    /**
     * Bytes of mapping state the scheme would need in hardware:
     * start-gap keeps two registers per active region, page-remap a
     * remap-table entry (logical + physical page id) per touched
     * page.
     */
    uint64_t tableBytes = 0;
};

/** Logical-to-physical line remapping scheme. */
class WearLeveler
{
  public:
    virtual ~WearLeveler() = default;

    virtual std::string name() const = 0;

    /** Physical line currently backing logical line @p logical. */
    virtual uint64_t map(uint64_t logical) const = 0;

    /**
     * Account one demand write to @p logical and perform any due
     * leveling action, appending the physical copies it requires to
     * @p moves. Called after the demand write was applied at
     * map(logical).
     */
    virtual void onWrite(uint64_t logical,
                         std::vector<LineMove> &moves) = 0;

    virtual LevelerStats stats() const = 0;
};

/**
 * Build the scheme @p config names.
 * @throws std::invalid_argument on an unknown scheme.
 */
std::unique_ptr<WearLeveler> makeLeveler(const LevelerConfig &config);

} // namespace wlcrc::wearlevel

#endif // WLCRC_WEARLEVEL_LEVELER_HH
