/**
 * @file
 * NEON (aarch64) implementations of the simd.hh kernels. Compiled
 * only on aarch64, where NEON is architecturally guaranteed; other
 * platforms get the null registration below.
 *
 * Bit-identity contract as in simd_avx2.cc: integer kernels are
 * exact, and the accumulation kernels issue per-lane vaddq_f64 adds
 * in scalar cell order, so sums match the scalar reference exactly.
 */

#include "simd.hh"

#if defined(__aarch64__)

#include <arm_neon.h>
#include <cstring>

namespace wlcrc::simd
{

namespace
{

/** 1 bit per byte of @p ne (0x00/0xff per-byte mask), LSB = byte 0. */
inline uint16_t
moveMask16(uint8x16_t ne)
{
    const uint8x16_t powers = {1, 2, 4, 8, 16, 32, 64, 128,
                               1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t bits = vandq_u8(ne, powers);
    const auto lo = static_cast<uint16_t>(vaddv_u8(vget_low_u8(bits)));
    const auto hi =
        static_cast<uint16_t>(vaddv_u8(vget_high_u8(bits)));
    return static_cast<uint16_t>(lo | (hi << 8));
}

void
byteDiffMaskNeon(const uint8_t *a, const uint8_t *b, unsigned n,
                 uint64_t *mask)
{
    const unsigned nw = (n + 63) / 64;
    for (unsigned w = 0; w < nw; ++w) {
        const unsigned base = w * 64;
        uint64_t m = 0;
        if (base + 64 <= n) {
            for (unsigned k = 0; k < 4; ++k) {
                const uint8x16_t ne = vmvnq_u8(
                    vceqq_u8(vld1q_u8(a + base + 16 * k),
                             vld1q_u8(b + base + 16 * k)));
                m |= uint64_t{moveMask16(ne)} << (16 * k);
            }
        } else {
            for (unsigned i = base; i < n; ++i)
                m |= uint64_t{a[i] != b[i]} << (i - base);
        }
        mask[w] = m;
    }
}

/** Symbols 16h..16h+15 of @p word as one byte-per-symbol vector. */
inline uint8x16_t
symbolsHalf(uint64_t word, unsigned h)
{
    const uint8x16_t bytes =
        vreinterpretq_u8_u64(vdupq_n_u64(word));
    const uint8x16_t spread0 = {0, 0, 0, 0, 1, 1, 1, 1,
                                2, 2, 2, 2, 3, 3, 3, 3};
    const uint8x16_t spread1 = {4, 4, 4, 4, 5, 5, 5, 5,
                                6, 6, 6, 6, 7, 7, 7, 7};
    const uint8x16_t v =
        vqtbl1q_u8(bytes, h ? spread1 : spread0);
    // Per-byte right shift by 2 * (c % 4): ushl with negative counts.
    const int8x16_t shifts = {0, -2, -4, -6, 0, -2, -4, -6,
                              0, -2, -4, -6, 0, -2, -4, -6};
    const uint8x16_t shifted = vshlq_u8(v, shifts);
    return vandq_u8(shifted, vdupq_n_u8(3));
}

void
mapSymbolsNeon(uint64_t word, const uint8_t *map4, unsigned lo,
               unsigned hi, uint8_t *out)
{
    uint8x16_t lut = vdupq_n_u8(0);
    lut = vsetq_lane_u8(map4[0], lut, 0);
    lut = vsetq_lane_u8(map4[1], lut, 1);
    lut = vsetq_lane_u8(map4[2], lut, 2);
    lut = vsetq_lane_u8(map4[3], lut, 3);
    alignas(16) uint8_t tmp[32];
    vst1q_u8(tmp, vqtbl1q_u8(lut, symbolsHalf(word, 0)));
    vst1q_u8(tmp + 16, vqtbl1q_u8(lut, symbolsHalf(word, 1)));
    if (lo == 0 && hi == 31) {
        std::memcpy(out, tmp, 32);
        return;
    }
    std::memcpy(out + lo, tmp + lo, hi - lo + 1);
}

void
accumRows4Neon(const double *rows, const uint8_t *stored,
               uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    float64x2_t a0 = vld1q_f64(acc);
    float64x2_t a1 = vld1q_f64(acc + 2);
    uint64_t w = word >> (2 * lo);
    for (unsigned c = lo; c <= hi; ++c) {
        const auto sym = static_cast<unsigned>(w & 3);
        w >>= 2;
        const double *row = rows + (stored[c] * 4u + sym) * 4u;
        a0 = vaddq_f64(a0, vld1q_f64(row));
        a1 = vaddq_f64(a1, vld1q_f64(row + 2));
    }
    vst1q_f64(acc, a0);
    vst1q_f64(acc + 2, a1);
}

void
accumRows8Neon(const double *rows, const uint8_t *stored,
               uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    float64x2_t a0 = vld1q_f64(acc);
    float64x2_t a1 = vld1q_f64(acc + 2);
    float64x2_t a2 = vld1q_f64(acc + 4);
    float64x2_t a3 = vld1q_f64(acc + 6);
    uint64_t w = word >> (2 * lo);
    for (unsigned c = lo; c <= hi; ++c) {
        const auto sym = static_cast<unsigned>(w & 3);
        w >>= 2;
        const double *row = rows + (stored[c] * 4u + sym) * 8u;
        a0 = vaddq_f64(a0, vld1q_f64(row));
        a1 = vaddq_f64(a1, vld1q_f64(row + 2));
        a2 = vaddq_f64(a2, vld1q_f64(row + 4));
        a3 = vaddq_f64(a3, vld1q_f64(row + 6));
    }
    vst1q_f64(acc, a0);
    vst1q_f64(acc + 2, a1);
    vst1q_f64(acc + 4, a2);
    vst1q_f64(acc + 6, a3);
}

void
accumBlocks4Neon(const double *rows, const uint8_t *stored,
                 uint64_t word, const uint8_t *lo, const uint8_t *hi,
                 unsigned nblocks, double *acc)
{
    // Independent per-block accumulator pairs, added in ascending
    // cell order per block — bit-identical to accumRows4 per block.
    for (unsigned b = 0; b < nblocks; ++b)
        accumRows4Neon(rows, stored, word, lo[b], hi[b],
                       acc + 4 * b);
}

void
mapBlocksNeon(uint64_t word, const uint8_t *const *tables,
              const uint8_t *lo, const uint8_t *hi, unsigned nblocks,
              uint8_t *out)
{
    // Decode the word's symbols once; per-block table lookups land
    // in a staging buffer whose covered span is copied out.
    alignas(16) uint8_t tmp[32];
    const uint8x16_t s0 = symbolsHalf(word, 0);
    const uint8x16_t s1 = symbolsHalf(word, 1);
    for (unsigned b = 0; b < nblocks; ++b) {
        const uint8_t *map4 = tables[b];
        uint8x16_t lut = vdupq_n_u8(0);
        lut = vsetq_lane_u8(map4[0], lut, 0);
        lut = vsetq_lane_u8(map4[1], lut, 1);
        lut = vsetq_lane_u8(map4[2], lut, 2);
        lut = vsetq_lane_u8(map4[3], lut, 3);
        alignas(16) uint8_t st[32];
        vst1q_u8(st, vqtbl1q_u8(lut, s0));
        vst1q_u8(st + 16, vqtbl1q_u8(lut, s1));
        std::memcpy(tmp + lo[b], st + lo[b], hi[b] - lo[b] + 1);
    }
    const unsigned a = lo[0];
    const unsigned z = hi[nblocks - 1];
    std::memcpy(out + a, tmp + a, z - a + 1);
}

constexpr Ops neonOps = {byteDiffMaskNeon, mapSymbolsNeon,
                         accumRows4Neon, accumRows8Neon,
                         accumBlocks4Neon, mapBlocksNeon};

} // namespace

const Ops *
neonOpsOrNull()
{
    return &neonOps;
}

} // namespace wlcrc::simd

#else // !__aarch64__

namespace wlcrc::simd
{

const Ops *
neonOpsOrNull()
{
    return nullptr;
}

} // namespace wlcrc::simd

#endif
