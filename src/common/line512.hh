/**
 * @file
 * Line512: a 512-bit memory line payload with bit-, symbol- and
 * word-level accessors.
 *
 * A PCM memory line in this project is always 512 data bits (64 bytes),
 * viewed interchangeably as:
 *   - 512 bits b511..b0,
 *   - 256 two-bit symbols (symbol i = bits {2i+1, 2i}), each stored in
 *     one 4-level PCM cell, and
 *   - 8 little-endian 64-bit words (word w covers bits [64w+63 : 64w]).
 */

#ifndef WLCRC_COMMON_LINE512_HH
#define WLCRC_COMMON_LINE512_HH

#include <array>
#include <cstdint>
#include <string>

namespace wlcrc
{

/** Number of bits in a memory line. */
inline constexpr unsigned lineBits = 512;
/** Number of 2-bit symbols (MLC cells) holding the line payload. */
inline constexpr unsigned lineSymbols = 256;
/** Number of 64-bit words in a memory line. */
inline constexpr unsigned lineWords = 8;

/**
 * A 512-bit value with convenient accessors at bit, 2-bit-symbol and
 * 64-bit-word granularity. Value-semantic and cheap to copy.
 */
class Line512
{
  public:
    /** Construct an all-zero line. */
    constexpr Line512() : words_{} {}

    /** Construct from eight 64-bit words (word 0 = bits 63..0). */
    explicit constexpr Line512(const std::array<uint64_t, lineWords> &w)
        : words_(w)
    {}

    /** @return word @p w (0..7). */
    uint64_t
    word(unsigned w) const
    {
        return words_[w];
    }

    /** Set word @p w to @p value. */
    void
    setWord(unsigned w, uint64_t value)
    {
        words_[w] = value;
    }

    /** @return bit @p i (0..511) as 0 or 1. */
    unsigned
    bit(unsigned i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Set bit @p i to @p v (0 or 1). */
    void
    setBit(unsigned i, unsigned v)
    {
        const uint64_t mask = uint64_t{1} << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /**
     * @return symbol @p s (0..255): the two bits {2s+1, 2s}, with bit
     * 2s+1 as the MSB of the symbol, matching the paper's convention
     * that consecutive bit pairs share a cell.
     */
    unsigned
    symbol(unsigned s) const
    {
        return (words_[s >> 5] >> ((s & 31) * 2)) & 3;
    }

    /** Set symbol @p s to the 2-bit value @p v. */
    void
    setSymbol(unsigned s, unsigned v)
    {
        const unsigned shift = (s & 31) * 2;
        words_[s >> 5] =
            (words_[s >> 5] & ~(uint64_t{3} << shift)) |
            (uint64_t(v & 3) << shift);
    }

    /** Extract @p len bits (<=64) starting at bit @p pos. */
    uint64_t
    bits(unsigned pos, unsigned len) const;

    /** Store the low @p len bits (<=64) of @p value at bit @p pos. */
    void setBits(unsigned pos, unsigned len, uint64_t value);

    /** Bitwise XOR, used by XOR-mask (FlipMin style) codecs. */
    Line512 operator^(const Line512 &o) const;

    /** Bitwise NOT, used by Flip-N-Write. */
    Line512 operator~() const;

    bool operator==(const Line512 &o) const = default;

    /** @return 128-hex-digit string, word 7 first (for debugging). */
    std::string toHex() const;

  private:
    std::array<uint64_t, lineWords> words_;
};

} // namespace wlcrc

#endif // WLCRC_COMMON_LINE512_HH
