#include "rng.hh"

namespace wlcrc
{

namespace
{

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &s : s_)
        s = splitMix64(seed);
    // Avoid the (astronomically unlikely) all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
childSeed(uint64_t parent, uint64_t shard)
{
    // Offset the parent along the SplitMix64 Weyl sequence by the
    // shard index, then scramble. Distinct shards of one parent and
    // equal shards of distinct parents both land far apart, and
    // childSeed(p, s) never equals p itself.
    uint64_t x = parent + shard * 0xbf58476d1ce4e5b9ull;
    return splitMix64(x);
}

} // namespace wlcrc
