#include "crc32.hh"

#include <array>

namespace wlcrc
{

namespace
{

constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0u);
        table[i] = c;
    }
    return table;
}

constexpr auto table = makeTable();

} // namespace

uint32_t
crc32(const void *data, std::size_t len, uint32_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace wlcrc
