/**
 * @file
 * Dependency-free LZ block codec for the WLCTRC03 trace container.
 *
 * Byte-oriented LZSS in the LZ4 family: a stream of sequences, each
 * a token byte (literal-length nibble, match-length nibble, both
 * 255-continued), the literal bytes, then a 2-byte little-endian
 * match offset into the previously decoded output (64 KiB window)
 * and the extended match length. The final sequence may be
 * literals-only (input ends after the literal run). Minimum match
 * length is 4 bytes; offsets are 1-based and must stay inside the
 * bytes already produced.
 *
 * Trace blocks are runs of 136-byte records whose address and data
 * words repeat heavily on biased workloads, so even this greedy
 * single-pass matcher shrinks them several-fold; blocks that do not
 * shrink are stored raw by the writer (tracefile/block_codec.hh).
 *
 * The decoder is hostile-input safe: every read is bounds-checked
 * against the input, every write against the output capacity, and
 * malformed streams throw std::runtime_error naming the defect —
 * they never over-read, over-write or loop forever. wlcrc_fuzz
 * hammers this contract with seeded mutations.
 */

#ifndef WLCRC_COMMON_LZ_HH
#define WLCRC_COMMON_LZ_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlcrc
{

/**
 * Reusable compressor state (the position hash table). Passing the
 * same scratch to successive lzCompress() calls makes compression
 * allocation-free after the first block — the writer's steady-state
 * guarantee.
 */
struct LzScratch
{
    std::vector<uint32_t> table;
};

/**
 * @return an output capacity that lzCompress() can never exceed for
 * @p rawLen input bytes (worst case: incompressible data stored as
 * one long literal run).
 */
std::size_t lzCompressBound(std::size_t rawLen);

/**
 * Compress @p src[0..srcLen) into @p dst.
 * @return the compressed size, or 0 if the result would not fit in
 * @p dstCap — callers pass dstCap = srcLen - 1 to demand a strict
 * win and store the block raw otherwise.
 */
std::size_t lzCompress(const uint8_t *src, std::size_t srcLen,
                       uint8_t *dst, std::size_t dstCap,
                       LzScratch *scratch = nullptr);

/**
 * Decompress @p src[0..srcLen) into @p dst[0..dstCap).
 * @return the number of bytes produced (<= dstCap).
 * @throws std::runtime_error on any malformed input: truncated
 * runs, offsets outside the decoded window, or output overflowing
 * @p dstCap.
 */
std::size_t lzDecompress(const uint8_t *src, std::size_t srcLen,
                         uint8_t *dst, std::size_t dstCap);

} // namespace wlcrc

#endif // WLCRC_COMMON_LZ_HH
