#include "lz.hh"

#include <cstring>
#include <stdexcept>

namespace wlcrc
{

namespace
{

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kHashBits = 14;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

inline uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline uint32_t
hash4(const uint8_t *p)
{
    // Fibonacci hashing of the 4-byte prefix; endianness only
    // permutes buckets, never changes the output stream, because
    // every candidate is verified byte-for-byte before use.
    return (load32(p) * 2654435761u) >> (32 - kHashBits);
}

/** Bounds-checked output writer; overflow turns into "didn't fit". */
struct Sink
{
    uint8_t *dst;
    std::size_t cap;
    std::size_t pos = 0;
    bool ok = true;

    void
    put(uint8_t b)
    {
        if (pos < cap)
            dst[pos++] = b;
        else
            ok = false;
    }

    void
    putRun(const uint8_t *src, std::size_t n)
    {
        if (n <= cap - pos) {
            std::memcpy(dst + pos, src, n);
            pos += n;
        } else {
            ok = false;
            pos = cap;
        }
    }

    /** Emit a 255-continued length extension for @p v >= 15. */
    void
    putExtent(std::size_t v)
    {
        v -= 15;
        while (v >= 255) {
            put(255);
            v -= 255;
        }
        put(static_cast<uint8_t>(v));
    }
};

void
emitSequence(Sink &out, const uint8_t *lit, std::size_t litLen,
             std::size_t offset, std::size_t matchLen)
{
    const std::size_t litNibble = litLen < 15 ? litLen : 15;
    const std::size_t matchCode =
        matchLen ? matchLen - kMinMatch : 0;
    const std::size_t matchNibble = matchCode < 15 ? matchCode : 15;
    out.put(static_cast<uint8_t>((litNibble << 4) | matchNibble));
    if (litNibble == 15)
        out.putExtent(litLen);
    out.putRun(lit, litLen);
    if (matchLen == 0)
        return; // literals-only tail sequence
    out.put(static_cast<uint8_t>(offset & 0xff));
    out.put(static_cast<uint8_t>(offset >> 8));
    if (matchNibble == 15)
        out.putExtent(matchCode);
}

} // namespace

std::size_t
lzCompressBound(std::size_t rawLen)
{
    // One literal-only stream: token + extension bytes + literals.
    return rawLen + rawLen / 255 + 16;
}

std::size_t
lzCompress(const uint8_t *src, std::size_t srcLen, uint8_t *dst,
           std::size_t dstCap, LzScratch *scratch)
{
    LzScratch local;
    LzScratch &s = scratch ? *scratch : local;
    s.table.assign(kHashSize, 0); // positions stored +1; 0 = empty

    Sink out{dst, dstCap};
    std::size_t pos = 0;
    std::size_t litStart = 0;
    // Stop matching where a 4-byte load could run past the end.
    const std::size_t matchable =
        srcLen >= kMinMatch ? srcLen - kMinMatch + 1 : 0;

    // Trace blocks are runs of recordBytes-periodic records, so a
    // probe at exactly one record back catches the dominant
    // redundancy (same-line rewrites) even when the hash slot was
    // overwritten in between.
    constexpr std::size_t kStride = 136;

    const auto matchLenAt = [&](std::size_t from,
                                std::size_t at) -> std::size_t {
        if (load32(src + from) != load32(src + at))
            return 0;
        std::size_t len = kMinMatch;
        while (at + len < srcLen && src[from + len] == src[at + len])
            ++len;
        return len;
    };

    while (pos < matchable && out.ok) {
        const uint32_t h = hash4(src + pos);
        const uint32_t cand = s.table[h];
        s.table[h] = static_cast<uint32_t>(pos + 1);

        std::size_t from = 0;
        std::size_t len = 0;
        if (cand != 0) {
            const std::size_t c = cand - 1;
            if (pos - c <= kMaxOffset)
                len = matchLenAt(c, pos);
            from = c;
        }
        if (pos >= kStride) {
            const std::size_t sl = matchLenAt(pos - kStride, pos);
            if (sl > len) {
                len = sl;
                from = pos - kStride;
            }
        }
        if (len > 0) {
            // Extend backwards into the pending literals: changed
            // bytes break matches mid-record and the next hash hit
            // lands late; the gap bytes still match at this offset.
            while (pos > litStart && from > 0 &&
                   src[from - 1] == src[pos - 1]) {
                --pos;
                --from;
                ++len;
            }
            emitSequence(out, src + litStart, pos - litStart,
                         pos - from, len);
            pos += len;
            litStart = pos;
            if (pos + 2 < srcLen && pos >= 2) {
                // Re-seed the table at the match tail so runs of
                // identical records chain into long matches.
                s.table[hash4(src + pos - 2)] =
                    static_cast<uint32_t>(pos - 1);
            }
            continue;
        }
        ++pos;
    }
    if (litStart < srcLen || srcLen == 0)
        emitSequence(out, src + litStart, srcLen - litStart, 0, 0);
    return out.ok ? out.pos : 0;
}

std::size_t
lzDecompress(const uint8_t *src, std::size_t srcLen, uint8_t *dst,
             std::size_t dstCap)
{
    std::size_t ip = 0;
    std::size_t op = 0;
    const auto takeExtent = [&](std::size_t base) {
        std::size_t v = base;
        uint8_t b;
        do {
            if (ip >= srcLen)
                throw std::runtime_error(
                    "lz: truncated length extension");
            b = src[ip++];
            v += b;
        } while (b == 255);
        return v;
    };

    while (ip < srcLen) {
        const uint8_t token = src[ip++];
        std::size_t lit = token >> 4;
        if (lit == 15)
            lit = takeExtent(lit);
        if (lit > srcLen - ip)
            throw std::runtime_error(
                "lz: literal run past end of input");
        if (lit > dstCap - op)
            throw std::runtime_error(
                "lz: output overflow (literal run)");
        std::memcpy(dst + op, src + ip, lit);
        ip += lit;
        op += lit;
        if (ip == srcLen)
            break; // literals-only tail sequence
        if (srcLen - ip < 2)
            throw std::runtime_error("lz: truncated match offset");
        const std::size_t offset =
            std::size_t{src[ip]} | (std::size_t{src[ip + 1]} << 8);
        ip += 2;
        if (offset == 0 || offset > op)
            throw std::runtime_error(
                "lz: match offset outside decoded window");
        std::size_t matchLen = token & 0xf;
        if (matchLen == 15)
            matchLen = takeExtent(matchLen);
        matchLen += kMinMatch;
        if (matchLen > dstCap - op)
            throw std::runtime_error(
                "lz: output overflow (match copy)");
        const uint8_t *from = dst + op - offset;
        if (offset >= matchLen) {
            std::memcpy(dst + op, from, matchLen);
        } else {
            for (std::size_t i = 0; i < matchLen; ++i)
                dst[op + i] = from[i]; // overlapped: byte-serial
        }
        op += matchLen;
    }
    return op;
}

} // namespace wlcrc
