/**
 * @file
 * Xoshiro256** pseudo-random generator plus small sampling helpers.
 *
 * All stochastic components of the simulator (workload synthesis,
 * disturbance sampling) draw from this generator so runs are fully
 * reproducible from a single seed.
 */

#ifndef WLCRC_COMMON_RNG_HH
#define WLCRC_COMMON_RNG_HH

#include <cstdint>

namespace wlcrc
{

/**
 * Xoshiro256** generator (Blackman & Vigna). Deterministic across
 * platforms, unlike std::mt19937 + distributions, and fast enough for
 * hundreds of millions of draws per bench run.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return next uniform 64-bit value. Inline: the disturbance
     *  sampler draws per exposure on the replay hot path. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return uniform value in [0, bound). @p bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** @return uniform double in [0, 1). */
    double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

    /** @return true with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /** @return uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

/**
 * Deterministically derive the seed of shard @p shard from
 * @p parent (SplitMix64-style mixing). Sharded replays seed each
 * shard's generator with childSeed(run_seed, shard) so results are
 * reproducible regardless of how shards are scheduled onto threads.
 */
uint64_t childSeed(uint64_t parent, uint64_t shard);

} // namespace wlcrc

#endif // WLCRC_COMMON_RNG_HH
