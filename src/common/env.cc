#include "env.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace wlcrc
{

namespace
{

[[noreturn]] void
reject(const char *parser, const std::string &name, const char *value,
       const char *expected)
{
    throw std::invalid_argument(std::string(parser) + ": " + name +
                                "='" + value + "' is not a valid " +
                                expected);
}

/** First non-whitespace character (what strtoull/strtod will see). */
const char *
firstToken(const char *v)
{
    while (std::isspace(static_cast<unsigned char>(*v)))
        ++v;
    return v;
}

} // namespace

uint64_t
envU64(const std::string &name, uint64_t fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    // strtoull silently wraps negative input to a huge value.
    if (*firstToken(v) == '-')
        reject("envU64", name, v, "unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 0);
    if (end == v || *end != '\0' || errno == ERANGE)
        reject("envU64", name, v, "unsigned integer");
    return parsed;
}

double
envDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    // ERANGE alone is not malformed: glibc also sets it on
    // underflow while returning a perfectly usable subnormal.
    // Only reject overflow (result pinned to +-HUGE_VAL).
    const bool overflow = errno == ERANGE &&
                          (parsed == HUGE_VAL || parsed == -HUGE_VAL);
    if (end == v || *end != '\0' || overflow)
        reject("envDouble", name, v, "number");
    return parsed;
}

std::string
envString(const std::string &name, const std::string &fallback)
{
    const char *v = std::getenv(name.c_str());
    return v && *v ? std::string(v) : fallback;
}

} // namespace wlcrc
