#include "env.hh"

#include <cstdlib>

namespace wlcrc
{

uint64_t
envU64(const std::string &name, uint64_t fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 0);
    return (end && *end == '\0') ? parsed : fallback;
}

double
envDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    return (end && *end == '\0') ? parsed : fallback;
}

std::string
envString(const std::string &name, const std::string &fallback)
{
    const char *v = std::getenv(name.c_str());
    return v && *v ? std::string(v) : fallback;
}

} // namespace wlcrc
