#include "csv.hh"

namespace wlcrc
{

namespace
{

/** Quote a cell if it contains CSV metacharacters. */
std::string
escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
CsvTable::write(std::ostream &os) const
{
    for (size_t i = 0; i < header_.size(); ++i)
        os << (i ? "," : "") << escape(header_[i]);
    os << '\n';
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << escape(row[i]);
        os << '\n';
    }
}

} // namespace wlcrc
