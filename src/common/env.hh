/**
 * @file
 * Environment-variable driven configuration helpers.
 *
 * Bench binaries honour a small set of knobs (e.g. WLCRC_BENCH_LINES)
 * so the full figure suite can be scaled from a smoke run to a
 * paper-fidelity run without rebuilding.
 */

#ifndef WLCRC_COMMON_ENV_HH
#define WLCRC_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace wlcrc
{

/**
 * @return $name parsed as u64, or @p fallback if unset/empty.
 * @throws std::invalid_argument for malformed values (trailing
 *         garbage, negative numbers, overflow): a typo'd knob must
 *         fail the run loudly, not silently fall back to a default.
 */
uint64_t envU64(const std::string &name, uint64_t fallback);

/**
 * @return $name parsed as double, or @p fallback if unset/empty.
 * @throws std::invalid_argument for malformed values, as envU64().
 */
double envDouble(const std::string &name, double fallback);

/** @return $name, or @p fallback if unset. */
std::string envString(const std::string &name,
                      const std::string &fallback);

} // namespace wlcrc

#endif // WLCRC_COMMON_ENV_HH
