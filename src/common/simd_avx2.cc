/**
 * @file
 * AVX2 implementations of the simd.hh kernels. This translation unit
 * is compiled with -mavx2 on x86-64 (see CMakeLists.txt) while the
 * rest of the library stays at the baseline ISA; dispatch guarantees
 * the functions here only run on CPUs reporting AVX2.
 *
 * Bit-identity: mapSymbolsAvx2/byteDiffMaskAvx2 are pure integer
 * transforms; accumRows4/8 add the same doubles in the same cell
 * order as the scalar reference (vaddpd is four independent per-lane
 * adds), so every kernel reproduces the scalar results exactly.
 */

#include "simd.hh"

#if defined(__AVX2__)

#include <cstring>
#include <immintrin.h>

namespace wlcrc::simd
{

namespace
{

void
byteDiffMaskAvx2(const uint8_t *a, const uint8_t *b, unsigned n,
                 uint64_t *mask)
{
    const unsigned nw = (n + 63) / 64;
    for (unsigned w = 0; w < nw; ++w) {
        const unsigned base = w * 64;
        uint64_t m;
        if (base + 64 <= n) {
            const __m256i eq0 = _mm256_cmpeq_epi8(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a + base)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(b + base)));
            const __m256i eq1 = _mm256_cmpeq_epi8(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    a + base + 32)),
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    b + base + 32)));
            const auto lo = static_cast<uint32_t>(
                _mm256_movemask_epi8(eq0));
            const auto hi = static_cast<uint32_t>(
                _mm256_movemask_epi8(eq1));
            m = ~(uint64_t{lo} | (uint64_t{hi} << 32));
        } else {
            m = 0;
            for (unsigned i = base; i < n; ++i)
                m |= uint64_t{a[i] != b[i]} << (i - base);
        }
        mask[w] = m;
    }
}

/** All 32 symbols of @p word as one byte-per-symbol vector (0..3). */
inline __m256i
symbolsOf(uint64_t word)
{
    // Replicate the word into every 128-bit lane, then spread byte
    // k of the word over symbol bytes 4k..4k+3 (lane-local pshufb).
    const __m256i w = _mm256_set1_epi64x(
        static_cast<long long>(word));
    const __m256i spread = _mm256_setr_epi8(
        0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, //
        4, 4, 4, 4, 5, 5, 5, 5, 6, 6, 6, 6, 7, 7, 7, 7);
    const __m256i bytes = _mm256_shuffle_epi8(w, spread);
    // Symbol c needs bits {2(c%4), 2(c%4)+1} of its byte: shift each
    // byte right by 0/2/4/6 depending on c % 4, then mask to 2 bits.
    const __m256i sh0 = bytes;
    const __m256i sh2 = _mm256_srli_epi16(bytes, 2);
    const __m256i sh4 = _mm256_srli_epi16(bytes, 4);
    const __m256i sh6 = _mm256_srli_epi16(bytes, 6);
    const __m256i pick1 = _mm256_set1_epi32(0x0000ff00);
    const __m256i pick2 = _mm256_set1_epi32(0x00ff0000);
    const __m256i pick3 =
        _mm256_set1_epi32(static_cast<int>(0xff000000u));
    __m256i sym = _mm256_blendv_epi8(sh0, sh2, pick1);
    sym = _mm256_blendv_epi8(sym, sh4, pick2);
    sym = _mm256_blendv_epi8(sym, sh6, pick3);
    return _mm256_and_si256(sym, _mm256_set1_epi8(3));
}

void
mapSymbolsAvx2(uint64_t word, const uint8_t *map4, unsigned lo,
               unsigned hi, uint8_t *out)
{
    const __m256i sym = symbolsOf(word);
    // 4-entry state LUT replicated per lane; pshufb indexes it with
    // each symbol byte.
    const __m256i lut = _mm256_set1_epi32(
        static_cast<int>(uint32_t{map4[0]} | (uint32_t{map4[1]} << 8) |
                         (uint32_t{map4[2]} << 16) |
                         (uint32_t{map4[3]} << 24)));
    const __m256i states = _mm256_shuffle_epi8(lut, sym);
    if (lo == 0 && hi == 31) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), states);
        return;
    }
    alignas(32) uint8_t tmp[32];
    _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), states);
    std::memcpy(out + lo, tmp + lo, hi - lo + 1);
}

void
accumRows4Avx2(const double *rows, const uint8_t *stored,
               uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    __m256d a = _mm256_loadu_pd(acc);
    uint64_t w = word >> (2 * lo);
    for (unsigned c = lo; c <= hi; ++c) {
        const auto sym = static_cast<unsigned>(w & 3);
        w >>= 2;
        const double *row = rows + (stored[c] * 4u + sym) * 4u;
        a = _mm256_add_pd(a, _mm256_loadu_pd(row));
    }
    _mm256_storeu_pd(acc, a);
}

void
accumRows8Avx2(const double *rows, const uint8_t *stored,
               uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    __m256d a0 = _mm256_loadu_pd(acc);
    __m256d a1 = _mm256_loadu_pd(acc + 4);
    uint64_t w = word >> (2 * lo);
    for (unsigned c = lo; c <= hi; ++c) {
        const auto sym = static_cast<unsigned>(w & 3);
        w >>= 2;
        const double *row = rows + (stored[c] * 4u + sym) * 8u;
        a0 = _mm256_add_pd(a0, _mm256_loadu_pd(row));
        a1 = _mm256_add_pd(a1, _mm256_loadu_pd(row + 4));
    }
    _mm256_storeu_pd(acc, a0);
    _mm256_storeu_pd(acc + 4, a1);
}

void
accumBlocks4Avx2(const double *rows, const uint8_t *stored,
                 uint64_t word, const uint8_t *lo, const uint8_t *hi,
                 unsigned nblocks, double *acc)
{
    // One accumulator register per block: the per-block chains are
    // independent, so out-of-order execution overlaps them while
    // each chain still adds its cells in ascending order — the
    // per-block sums are bit-identical to accumRows4 per block.
    __m256d a[8];
    for (unsigned b = 0; b < nblocks; ++b)
        a[b] = _mm256_loadu_pd(acc + 4 * b);
    for (unsigned b = 0; b < nblocks; ++b) {
        uint64_t w = word >> (2 * lo[b]);
        __m256d ab = a[b];
        for (unsigned c = lo[b]; c <= hi[b]; ++c) {
            const auto sym = static_cast<unsigned>(w & 3);
            w >>= 2;
            const double *row = rows + (stored[c] * 4u + sym) * 4u;
            ab = _mm256_add_pd(ab, _mm256_loadu_pd(row));
        }
        a[b] = ab;
    }
    for (unsigned b = 0; b < nblocks; ++b)
        _mm256_storeu_pd(acc + 4 * b, a[b]);
}

void
mapBlocksAvx2(uint64_t word, const uint8_t *const *tables,
              const uint8_t *lo, const uint8_t *hi, unsigned nblocks,
              uint8_t *out)
{
    // Decode the word's 32 symbols once, then blend each block's
    // LUT result into place by cell-range mask and copy out the
    // contiguous covered span.
    const __m256i sym = symbolsOf(word);
    const __m256i ramp = _mm256_setr_epi8(
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, //
        16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
        31);
    __m256i res = _mm256_setzero_si256();
    for (unsigned b = 0; b < nblocks; ++b) {
        const uint8_t *map4 = tables[b];
        const __m256i lut = _mm256_set1_epi32(static_cast<int>(
            uint32_t{map4[0]} | (uint32_t{map4[1]} << 8) |
            (uint32_t{map4[2]} << 16) | (uint32_t{map4[3]} << 24)));
        const __m256i states = _mm256_shuffle_epi8(lut, sym);
        // Exclude cells below lo[b] or above hi[b] (ramp values are
        // 0..31, so signed byte compares are safe).
        const __m256i below = _mm256_cmpgt_epi8(
            _mm256_set1_epi8(static_cast<char>(lo[b])), ramp);
        const __m256i above = _mm256_cmpgt_epi8(
            ramp, _mm256_set1_epi8(static_cast<char>(hi[b])));
        res = _mm256_blendv_epi8(states, res,
                                 _mm256_or_si256(below, above));
    }
    alignas(32) uint8_t tmp[32];
    _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), res);
    const unsigned a = lo[0];
    const unsigned z = hi[nblocks - 1];
    const unsigned len = z - a + 1;
    if (len >= 16) {
        std::memcpy(out + a, tmp + a, 16);
        std::memcpy(out + z + 1 - 16, tmp + z + 1 - 16, 16);
    } else if (len >= 8) {
        std::memcpy(out + a, tmp + a, 8);
        std::memcpy(out + z + 1 - 8, tmp + z + 1 - 8, 8);
    } else {
        for (unsigned c = a; c <= z; ++c)
            out[c] = tmp[c];
    }
}

constexpr Ops avx2Ops = {byteDiffMaskAvx2, mapSymbolsAvx2,
                         accumRows4Avx2, accumRows8Avx2,
                         accumBlocks4Avx2, mapBlocksAvx2};

} // namespace

const Ops *
avx2OpsOrNull()
{
    return &avx2Ops;
}

} // namespace wlcrc::simd

#else // !__AVX2__

namespace wlcrc::simd
{

const Ops *
avx2OpsOrNull()
{
    return nullptr;
}

} // namespace wlcrc::simd

#endif
