/**
 * @file
 * Runtime-dispatched SIMD kernels for the encode hot path.
 *
 * Three inner loops dominate LineCodec::encodeInto and the
 * differential write (see docs/simd.md):
 *  - the word-wise differential scan (which cells changed),
 *  - per-candidate symbol mapping (2-bit symbols -> cell states),
 *  - cost-row candidate scoring (per-cell 4/8-lane double adds).
 *
 * Each loop is exposed here as a kernel in an Ops table with three
 * implementations: a scalar reference (always compiled, always the
 * ground truth), AVX2 (x86-64) and NEON (aarch64). Every vector
 * implementation is required to be *bit-identical* to the scalar
 * one — the accumulation kernels perform per-lane adds in the same
 * cell order, so IEEE-754 sums match exactly and the golden CSVs do
 * not depend on the dispatch choice. tests/simd_equivalence_test.cc
 * and tests/encode_fuzz_test.cc enforce this.
 *
 * Dispatch: the active kernel resolves lazily from $WLCRC_SIMD
 * ("auto" | "scalar" | "avx2" | "neon", default auto = best
 * available), or programmatically via setKernel() (wlcrc_sim --simd).
 * Unknown names and unavailable kernels fail loudly.
 */

#ifndef WLCRC_COMMON_SIMD_HH
#define WLCRC_COMMON_SIMD_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace wlcrc::simd
{

/** Kernel families, one per instruction set. */
enum class Kernel : uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

/** Number of Kernel enumerators. */
inline constexpr unsigned numKernels = 3;

/**
 * The kernel function table. All pointers are always valid; the
 * scalar table is the reference implementation and the vector tables
 * must match it bit-for-bit.
 */
struct Ops
{
    /**
     * Byte-difference mask: set bit i of @p mask (i < @p n) iff
     * a[i] != b[i]. Writes exactly (n + 63) / 64 words; bits past
     * @p n in the last word are zero.
     */
    void (*byteDiffMask)(const uint8_t *a, const uint8_t *b,
                         unsigned n, uint64_t *mask);

    /**
     * Symbol mapping over one 64-bit word: for each cell c in
     * [@p lo, @p hi] (0 <= lo <= hi <= 31),
     *   out[c] = map4[(word >> (2 * c)) & 3].
     * Cells outside the range are not written.
     */
    void (*mapSymbols)(uint64_t word, const uint8_t *map4,
                       unsigned lo, unsigned hi, uint8_t *out);

    /**
     * 4-lane cost-row accumulation over one 64-bit word: for each
     * cell c ascending in [@p lo, @p hi] (0 <= lo <= hi <= 31),
     *   acc[m] += rows[(stored[c] * 4 + sym(c)) * 4 + m]  (m = 0..3)
     * where sym(c) = (word >> (2 * c)) & 3 and @p rows is a
     * [4 states][4 symbols][4 lanes] table. Adds are per-lane in
     * cell order, so sums are bit-identical across kernels.
     */
    void (*accumRows4)(const double *rows, const uint8_t *stored,
                       uint64_t word, unsigned lo, unsigned hi,
                       double *acc);

    /** 8-lane variant of accumRows4 (row stride 8, for 6cosets). */
    void (*accumRows8)(const double *rows, const uint8_t *stored,
                       uint64_t word, unsigned lo, unsigned hi,
                       double *acc);

    /**
     * Fused multi-block accumRows4 over one word: equivalent to
     *   for (b = 0; b < nblocks; ++b)
     *       accumRows4(rows, stored, word, lo[b], hi[b], acc + 4 * b)
     * in that exact order, so per-block sums stay bit-identical.
     * Blocks must be ascending and disjoint; nblocks <= 8, and all
     * 32 bytes of @p stored must be readable (vector kernels decode
     * the whole word's cells up front, whatever the block ranges).
     * One call scores every block of a word — the per-block
     * accumulator chains are independent, which is where the vector
     * kernels win.
     */
    void (*accumBlocks4)(const double *rows, const uint8_t *stored,
                         uint64_t word, const uint8_t *lo,
                         const uint8_t *hi, unsigned nblocks,
                         double *acc);

    /**
     * Fused multi-block symbol mapping over one word: for each block
     * b and each cell c in [lo[b], hi[b]],
     *   out[c] = tables[b][(word >> (2 * c)) & 3].
     * Blocks must be ascending and disjoint, and their union must be
     * the contiguous cell range [lo[0], hi[nblocks - 1]]; exactly
     * that range is written. Equivalent to nblocks mapSymbols calls
     * with per-block tables.
     */
    void (*mapBlocks)(uint64_t word, const uint8_t *const *tables,
                      const uint8_t *lo, const uint8_t *hi,
                      unsigned nblocks, uint8_t *out);
};

/** Display name ("scalar", "avx2", "neon"). */
const char *kernelName(Kernel k);

/** True iff @p k is compiled in and supported by this CPU. */
bool kernelAvailable(Kernel k);

/** The fastest available kernel (what "auto" resolves to). */
Kernel bestKernel();

/**
 * Parse "auto" / "scalar" / "avx2" / "neon" into the kernel it
 * selects ("auto" resolves to bestKernel()).
 * @throws std::invalid_argument for unknown names: a typo'd knob
 *         must fail the run loudly, not fall back silently.
 */
Kernel parseKernel(const std::string &text);

/**
 * Force the active kernel.
 * @throws std::invalid_argument if @p k is unavailable here.
 */
void setKernel(Kernel k);

/** parseKernel + setKernel in one call (CLI --simd plumbing). */
void setKernelFromText(const std::string &text);

/**
 * The active kernel: the last setKernel() choice, else $WLCRC_SIMD,
 * else bestKernel(). Resolved once and cached.
 */
Kernel activeKernel();

/** Ops table of a specific kernel (tests drive kernels directly).
 *  @throws std::invalid_argument if unavailable. */
const Ops &opsFor(Kernel k);

namespace detail
{
/** Active table; null until first resolution. */
extern std::atomic<const Ops *> activeOps;
const Ops &resolveActiveOps();
} // namespace detail

/** Ops table of activeKernel() — the hot-path entry point. */
inline const Ops &
ops()
{
    const Ops *t = detail::activeOps.load(std::memory_order_relaxed);
    return t ? *t : detail::resolveActiveOps();
}

} // namespace wlcrc::simd

#endif // WLCRC_COMMON_SIMD_HH
