#include "line512.hh"

#include <cassert>
#include <cstdio>

namespace wlcrc
{

uint64_t
Line512::bits(unsigned pos, unsigned len) const
{
    assert(len >= 1 && len <= 64 && pos + len <= lineBits);
    const unsigned w = pos >> 6;
    const unsigned off = pos & 63;
    uint64_t value = words_[w] >> off;
    if (off + len > 64)
        value |= words_[w + 1] << (64 - off);
    if (len < 64)
        value &= (uint64_t{1} << len) - 1;
    return value;
}

void
Line512::setBits(unsigned pos, unsigned len, uint64_t value)
{
    assert(len >= 1 && len <= 64 && pos + len <= lineBits);
    const uint64_t mask =
        len == 64 ? ~uint64_t{0} : (uint64_t{1} << len) - 1;
    value &= mask;
    const unsigned w = pos >> 6;
    const unsigned off = pos & 63;
    words_[w] = (words_[w] & ~(mask << off)) | (value << off);
    if (off + len > 64) {
        const unsigned hi = off + len - 64;
        const uint64_t hi_mask = (uint64_t{1} << hi) - 1;
        words_[w + 1] =
            (words_[w + 1] & ~hi_mask) | (value >> (64 - off));
    }
}

Line512
Line512::operator^(const Line512 &o) const
{
    Line512 r;
    for (unsigned w = 0; w < lineWords; ++w)
        r.words_[w] = words_[w] ^ o.words_[w];
    return r;
}

Line512
Line512::operator~() const
{
    Line512 r;
    for (unsigned w = 0; w < lineWords; ++w)
        r.words_[w] = ~words_[w];
    return r;
}

std::string
Line512::toHex() const
{
    std::string s;
    s.reserve(lineWords * 17);
    char buf[20];
    for (int w = lineWords - 1; w >= 0; --w) {
        std::snprintf(buf, sizeof(buf), "%016lx%s",
                      static_cast<unsigned long>(words_[w]),
                      w ? "_" : "");
        s += buf;
    }
    return s;
}

} // namespace wlcrc
