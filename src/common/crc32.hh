/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * buffers. Used by the WLCTRC02 trace container to checksum record
 * blocks and the footer index, so corruption is detected at read
 * time instead of silently skewing replay metrics.
 */

#ifndef WLCRC_COMMON_CRC32_HH
#define WLCRC_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace wlcrc
{

/**
 * @return the CRC-32 of @p data[0..len), optionally continuing from
 * a previous buffer's checksum @p seed (pass the prior return value
 * to checksum a stream in pieces; the default starts a new message).
 */
uint32_t crc32(const void *data, std::size_t len, uint32_t seed = 0);

} // namespace wlcrc

#endif // WLCRC_COMMON_CRC32_HH
