/**
 * @file
 * Minimal CSV table writer used by the bench harnesses to print the
 * rows/series corresponding to each paper figure.
 */

#ifndef WLCRC_COMMON_CSV_HH
#define WLCRC_COMMON_CSV_HH

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace wlcrc
{

/**
 * Accumulates rows of heterogeneous cells and streams them as CSV.
 * Intended for small result tables, not bulk data.
 */
class CsvTable
{
  public:
    /** Create a table with the given column headers. */
    explicit CsvTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Begin a new row; append cells with add(). */
    void newRow() { rows_.emplace_back(); }

    /** Append one cell (formatted with operator<<) to the last row. */
    template <typename T>
    void
    add(const T &value)
    {
        std::ostringstream os;
        os << value;
        rows_.back().push_back(os.str());
    }

    /** Append several cells to the last row. */
    template <typename... Ts>
    void
    addRow(const Ts &...values)
    {
        newRow();
        (add(values), ...);
    }

    /** Stream the header plus all rows to @p os. */
    void write(std::ostream &os) const;

    /** @return number of data rows so far. */
    size_t size() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace wlcrc

#endif // WLCRC_COMMON_CSV_HH
