#include "simd.hh"

#include <cstdlib>
#include <stdexcept>

namespace wlcrc::simd
{

namespace
{

// ------------------------------------------------- scalar reference

void
scalarByteDiffMask(const uint8_t *a, const uint8_t *b, unsigned n,
                   uint64_t *mask)
{
    const unsigned nw = (n + 63) / 64;
    for (unsigned w = 0; w < nw; ++w) {
        const unsigned base = w * 64;
        const unsigned lim = n - base < 64 ? n - base : 64;
        uint64_t m = 0;
        for (unsigned i = 0; i < lim; ++i)
            m |= uint64_t{a[base + i] != b[base + i]} << i;
        mask[w] = m;
    }
}

void
scalarMapSymbols(uint64_t word, const uint8_t *map4, unsigned lo,
                 unsigned hi, uint8_t *out)
{
    for (unsigned c = lo; c <= hi; ++c)
        out[c] = map4[(word >> (2 * c)) & 3];
}

void
scalarAccumRows4(const double *rows, const uint8_t *stored,
                 uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    for (unsigned c = lo; c <= hi; ++c) {
        const unsigned sym =
            static_cast<unsigned>((word >> (2 * c)) & 3);
        const double *row = rows + (stored[c] * 4u + sym) * 4u;
        for (unsigned m = 0; m < 4; ++m)
            acc[m] += row[m];
    }
}

void
scalarAccumRows8(const double *rows, const uint8_t *stored,
                 uint64_t word, unsigned lo, unsigned hi, double *acc)
{
    for (unsigned c = lo; c <= hi; ++c) {
        const unsigned sym =
            static_cast<unsigned>((word >> (2 * c)) & 3);
        const double *row = rows + (stored[c] * 4u + sym) * 8u;
        for (unsigned m = 0; m < 8; ++m)
            acc[m] += row[m];
    }
}

void
scalarAccumBlocks4(const double *rows, const uint8_t *stored,
                   uint64_t word, const uint8_t *lo,
                   const uint8_t *hi, unsigned nblocks, double *acc)
{
    for (unsigned b = 0; b < nblocks; ++b)
        scalarAccumRows4(rows, stored, word, lo[b], hi[b],
                         acc + 4 * b);
}

void
scalarMapBlocks(uint64_t word, const uint8_t *const *tables,
                const uint8_t *lo, const uint8_t *hi,
                unsigned nblocks, uint8_t *out)
{
    for (unsigned b = 0; b < nblocks; ++b)
        scalarMapSymbols(word, tables[b], lo[b], hi[b], out);
}

constexpr Ops scalarOps = {scalarByteDiffMask, scalarMapSymbols,
                           scalarAccumRows4, scalarAccumRows8,
                           scalarAccumBlocks4, scalarMapBlocks};

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

} // namespace

// Defined in simd_avx2.cc / simd_neon.cc; null when the translation
// unit was built without the matching instruction set.
const Ops *avx2OpsOrNull();
const Ops *neonOpsOrNull();

const char *
kernelName(Kernel k)
{
    switch (k) {
    case Kernel::Scalar:
        return "scalar";
    case Kernel::Avx2:
        return "avx2";
    case Kernel::Neon:
        return "neon";
    }
    return "?";
}

bool
kernelAvailable(Kernel k)
{
    switch (k) {
    case Kernel::Scalar:
        return true;
    case Kernel::Avx2:
        return avx2OpsOrNull() != nullptr && cpuHasAvx2();
    case Kernel::Neon:
        return neonOpsOrNull() != nullptr;
    }
    return false;
}

Kernel
bestKernel()
{
    if (kernelAvailable(Kernel::Avx2))
        return Kernel::Avx2;
    if (kernelAvailable(Kernel::Neon))
        return Kernel::Neon;
    return Kernel::Scalar;
}

Kernel
parseKernel(const std::string &text)
{
    if (text == "auto")
        return bestKernel();
    if (text == "scalar")
        return Kernel::Scalar;
    if (text == "avx2")
        return Kernel::Avx2;
    if (text == "neon")
        return Kernel::Neon;
    throw std::invalid_argument(
        "unknown SIMD kernel '" + text +
        "' (expected auto|scalar|avx2|neon)");
}

const Ops &
opsFor(Kernel k)
{
    if (!kernelAvailable(k)) {
        throw std::invalid_argument(
            std::string("SIMD kernel '") + kernelName(k) +
            "' is not available on this machine");
    }
    switch (k) {
    case Kernel::Avx2:
        return *avx2OpsOrNull();
    case Kernel::Neon:
        return *neonOpsOrNull();
    default:
        return scalarOps;
    }
}

namespace detail
{

std::atomic<const Ops *> activeOps{nullptr};

/** Kernel of the table in activeOps (valid once activeOps is set). */
std::atomic<Kernel> activeKind{Kernel::Scalar};

const Ops &
resolveActiveOps()
{
    // Lazy env resolution; racing threads resolve identically, so
    // the unsynchronised stores are benign.
    const char *env = std::getenv("WLCRC_SIMD");
    const Kernel k =
        parseKernel(env && *env ? env : std::string("auto"));
    const Ops &t = opsFor(k);
    activeKind.store(k, std::memory_order_relaxed);
    activeOps.store(&t, std::memory_order_release);
    return t;
}

} // namespace detail

void
setKernel(Kernel k)
{
    const Ops &t = opsFor(k); // validates availability
    detail::activeKind.store(k, std::memory_order_relaxed);
    detail::activeOps.store(&t, std::memory_order_release);
}

void
setKernelFromText(const std::string &text)
{
    setKernel(parseKernel(text));
}

Kernel
activeKernel()
{
    if (!detail::activeOps.load(std::memory_order_relaxed))
        detail::resolveActiveOps();
    return detail::activeKind.load(std::memory_order_relaxed);
}

} // namespace wlcrc::simd
