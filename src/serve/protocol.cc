#include "protocol.hh"

namespace wlcrc::serve
{

void
encodeFrameHeader(uint8_t *dst, const FrameHeader &h)
{
    net::encodeFrameHeader(dst, frameMagic, h);
}

bool
writeAll(int fd, const void *data, std::size_t n)
{
    return net::writeAll(fd, data, n);
}

bool
sendFrame(int fd, FrameType type, uint8_t flags,
          const void *payload, std::size_t payloadBytes)
{
    return net::sendFrame(fd, frameMagic,
                          static_cast<uint8_t>(type), flags, payload,
                          payloadBytes);
}

RecvStatus
recvFrame(int fd, FrameHeader &header, std::vector<uint8_t> &payload)
{
    return net::recvFrame(fd, frameMagic, maxFramePayload, header,
                          payload);
}

} // namespace wlcrc::serve
