/**
 * @file
 * BoundedQueue: the fixed-capacity MPSC ring between connection
 * readers and a bank's encode worker — the backpressure element of
 * the live service.
 *
 * The ring is preallocated at construction, so a steady-state
 * push/pop cycle performs no heap allocation. push() blocks while
 * the ring is full: a connection that outruns its bank's encode
 * stops reading its socket, the kernel receive window fills, and
 * TCP pushes back on the client — memory use stays bounded by
 * (capacity x item size) per bank no matter how fast clients send.
 * stallCount() counts pushes that had to wait, which telemetry
 * reports as the backpressure signal.
 */

#ifndef WLCRC_SERVE_QUEUE_HH
#define WLCRC_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace wlcrc::serve
{

/** Fixed-capacity blocking queue (many producers, one consumer). */
template <typename T>
class BoundedQueue
{
  public:
    /** @throws std::invalid_argument if @p capacity is 0. */
    explicit BoundedQueue(std::size_t capacity)
        : ring_(capacity ? capacity : throwCapacity())
    {}

    /**
     * Enqueue @p item, blocking while the queue is full.
     * @return false (item not enqueued) once close()d.
     */
    bool
    push(const T &item)
    {
        std::unique_lock lock(mutex_);
        if (size_ == ring_.size()) {
            ++stalls_;
            notFull_.wait(lock, [&] {
                return closed_ || size_ < ring_.size();
            });
        }
        if (closed_)
            return false;
        ring_[(head_ + size_) % ring_.size()] = item;
        ++size_;
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty.
     * @return false once close()d *and* drained — the consumer's
     * termination signal; every pushed item is still delivered.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || size_ > 0; });
        if (size_ == 0)
            return false;
        out = ring_[head_];
        head_ = (head_ + 1) % ring_.size();
        --size_;
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Reject future pushes; pops drain what is already queued. */
    void
    close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** Items currently queued (racy snapshot, for telemetry). */
    std::size_t
    depth() const
    {
        std::lock_guard lock(mutex_);
        return size_;
    }

    /** Pushes that found the queue full and had to wait. */
    uint64_t
    stallCount() const
    {
        std::lock_guard lock(mutex_);
        return stalls_;
    }

    std::size_t capacity() const { return ring_.size(); }

  private:
    [[noreturn]] static std::size_t throwCapacity();

    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::vector<T> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    uint64_t stalls_ = 0;
    bool closed_ = false;
};

template <typename T>
std::size_t
BoundedQueue<T>::throwCapacity()
{
    throw std::invalid_argument("BoundedQueue capacity must be > 0");
}

} // namespace wlcrc::serve

#endif // WLCRC_SERVE_QUEUE_HH
