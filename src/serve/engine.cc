#include "engine.hh"

#include <chrono>
#include <cstring>
#include <type_traits>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/runner.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::serve
{

// The seqlock slot is copied with memcpy between epoch bumps; that
// is only sound for a trivially copyable result struct.
static_assert(
    std::is_trivially_copyable_v<trace::ReplayResult>,
    "ReplayResult must stay trivially copyable for the seqlock");

namespace
{

/** Recompute a bank's wear CoV this often (writes). */
constexpr uint64_t wearCovEvery = 1024;

} // namespace

BankEngine::BankEngine(const EngineConfig &cfg)
    : cfg_(cfg),
      codec_(core::makeCodec(
          cfg.scheme, pcm::EnergyModel::withHighStateEnergies(
                          cfg.s3, cfg.s4))),
      unit_(pcm::EnergyModel::withHighStateEnergies(cfg.s3, cfg.s4),
            pcm::DisturbanceModel())
{
    const unsigned banks = cfg_.banks ? cfg_.banks : 1;
    cfg_.banks = banks;
    banks_.reserve(banks);
    for (unsigned b = 0; b < banks; ++b) {
        auto bank = std::make_unique<Bank>(cfg_.queueCapacity);
        // Seed bank b the way the offline runner seeds shard b of a
        // banks-way sharded replay — the root of the capture-replay
        // equivalence guarantee.
        bank->replayer = std::make_unique<trace::Replayer>(
            *codec_, unit_,
            runner::shardSeed(cfg_.seed, b, banks), cfg_.vnr);
        if (cfg_.wearEndurance) {
            bank->wear.emplace(codec_->cellCount());
            bank->replayer->device().attachWearTracker(&*bank->wear);
        }
        banks_.push_back(std::move(bank));
    }
}

BankEngine::~BankEngine()
{
    stop();
}

void
BankEngine::start()
{
    if (started_)
        return;
    started_ = true;
    for (auto &bank : banks_) {
        Bank *b = bank.get();
        bank->worker = std::thread([this, b] { workerLoop(*b); });
    }
}

void
BankEngine::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
    for (auto &bank : banks_)
        bank->queue.close();
    for (auto &bank : banks_)
        if (bank->worker.joinable())
            bank->worker.join();
}

bool
BankEngine::submit(const trace::WriteTransaction &txn,
                   ConnTicket *ticket)
{
    if (stopping_.load(std::memory_order_acquire))
        return false;
    Item item;
    item.txn = txn;
    item.ticket = ticket;
    Bank &bank =
        *banks_[runner::shardOf(txn.lineAddr, cfg_.banks)];
    if (!bank.queue.push(item))
        return false;
    if (ticket)
        ticket->accepted.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
BankEngine::drainWait(const ConnTicket &ticket) const
{
    // Polling keeps the encode path free of wakeup bookkeeping; a
    // drain happens once per connection close, never per write.
    while (ticket.encoded.load(std::memory_order_acquire) <
           ticket.accepted.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
}

void
BankEngine::publish(Bank &bank) const
{
    const uint64_t s = bank.seq.load(std::memory_order_relaxed);
    bank.seq.store(s + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    std::memcpy(&bank.snap, &bank.replayer->result(),
                sizeof bank.snap);
    std::atomic_thread_fence(std::memory_order_release);
    bank.seq.store(s + 2, std::memory_order_release);
}

trace::ReplayResult
BankEngine::readSnap(const Bank &bank) const
{
    trace::ReplayResult out;
    for (;;) {
        const uint64_t s1 = bank.seq.load(std::memory_order_acquire);
        if (s1 & 1)
            continue;
        std::atomic_thread_fence(std::memory_order_acquire);
        std::memcpy(&out, &bank.snap, sizeof out);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (bank.seq.load(std::memory_order_acquire) == s1)
            return out;
    }
}

void
BankEngine::workerLoop(Bank &bank)
{
    Item item;
    uint64_t sinceCov = 0;
    while (bank.queue.pop(item)) {
        bank.replayer->step(item.txn);
        bank.writes.fetch_add(1, std::memory_order_relaxed);
        encoded_.fetch_add(1, std::memory_order_relaxed);
        publish(bank);
        if (bank.wear && ++sinceCov >= wearCovEvery) {
            sinceCov = 0;
            bank.wearCov.store(bank.wear->summary().covCellWrites,
                               std::memory_order_relaxed);
        }
        if (item.ticket)
            item.ticket->encoded.fetch_add(
                1, std::memory_order_release);
    }
    if (bank.wear)
        bank.wearCov.store(bank.wear->summary().covCellWrites,
                           std::memory_order_relaxed);
    publish(bank);
}

std::vector<BankSnapshot>
BankEngine::snapshot() const
{
    std::vector<BankSnapshot> out;
    out.reserve(banks_.size());
    for (const auto &bank : banks_) {
        BankSnapshot s;
        s.writes = bank->writes.load(std::memory_order_relaxed);
        s.queueDepth = bank->queue.depth();
        s.stalls = bank->queue.stallCount();
        s.wearCov = bank->wearCov.load(std::memory_order_relaxed);
        s.replay = readSnap(*bank);
        out.push_back(s);
    }
    return out;
}

trace::ReplayResult
BankEngine::mergedResult() const
{
    trace::ReplayResult merged;
    if (stopped_) {
        // Workers are joined: read the exact per-bank results in
        // bank order, matching the runner's shard merge.
        for (const auto &bank : banks_)
            merged.merge(bank->replayer->result());
    } else {
        for (const auto &bank : banks_)
            merged.merge(readSnap(*bank));
    }
    return merged;
}

std::optional<pcm::WearTracker>
BankEngine::mergedWear() const
{
    if (!cfg_.wearEndurance)
        return std::nullopt;
    std::optional<pcm::WearTracker> merged;
    for (const auto &bank : banks_) {
        if (!bank->wear)
            continue;
        if (!merged)
            merged = *bank->wear;
        else
            merged->merge(*bank->wear);
    }
    return merged;
}

} // namespace wlcrc::serve
