#include "client.hh"

#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "tracefile/format.hh"

namespace wlcrc::serve
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::connect(const std::string &host, uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        throw std::runtime_error("bad host address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close();
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void
Client::hello(uint32_t streamId)
{
    uint8_t payload[8];
    tracefile::putLe32(payload, protocolVersion);
    tracefile::putLe32(payload + 4, streamId);
    if (!sendFrame(fd_, FrameType::Hello, 0, payload,
                   sizeof payload))
        throw std::runtime_error("hello: disconnect");
}

void
Client::sendWrites(const trace::WriteTransaction *txns,
                   std::size_t n, bool wantAck)
{
    writeBuf_.resize(n * tracefile::recordBytes);
    for (std::size_t i = 0; i < n; ++i)
        tracefile::encodeRecord(
            writeBuf_.data() + i * tracefile::recordBytes, txns[i]);
    if (!sendFrame(fd_, FrameType::Write,
                   wantAck ? flagAck : uint8_t{0}, writeBuf_.data(),
                   writeBuf_.size()))
        throw std::runtime_error("write: disconnect");
}

void
Client::expectFrame(FrameType want, FrameHeader &h)
{
    const RecvStatus st = recvFrame(fd_, h, payload_);
    if (st == RecvStatus::CleanEof)
        throw std::runtime_error("server closed the connection");
    if (st != RecvStatus::Ok)
        throw std::runtime_error(std::string("recv failed: ") +
                                 recvErrorName(st));
    if (static_cast<FrameType>(h.type) == FrameType::Error)
        throw std::runtime_error(
            "server error: " +
            std::string(payload_.begin(), payload_.end()));
    if (static_cast<FrameType>(h.type) != want)
        throw std::runtime_error("unexpected frame type " +
                                 std::to_string(h.type));
}

uint64_t
Client::readAck()
{
    FrameHeader h;
    expectFrame(FrameType::Ack, h);
    if (payload_.size() != 8)
        throw std::runtime_error("malformed ack");
    return tracefile::getLe64(payload_.data());
}

std::string
Client::stats()
{
    if (!sendFrame(fd_, FrameType::StatsReq, 0, nullptr, 0))
        throw std::runtime_error("stats: disconnect");
    FrameHeader h;
    expectFrame(FrameType::StatsReply, h);
    return std::string(payload_.begin(), payload_.end());
}

std::string
Client::bye()
{
    if (!sendFrame(fd_, FrameType::Bye, 0, nullptr, 0))
        throw std::runtime_error("bye: disconnect");
    FrameHeader h;
    expectFrame(FrameType::ByeAck, h);
    return std::string(payload_.begin(), payload_.end());
}

void
Client::sendRaw(const void *data, std::size_t n)
{
    if (!writeAll(fd_, data, n))
        throw std::runtime_error("raw send failed");
}

} // namespace wlcrc::serve
