/**
 * @file
 * Server: the live write-stream service around BankEngine — TCP
 * listener, per-connection reader threads, telemetry snapshots and
 * the graceful-drain lifecycle. tools/wlcrc_serve is a thin CLI
 * around this class; tests and the serve bench embed it in-process.
 *
 * Threads: one accept loop, one reader thread per connection, one
 * encode worker per bank (BankEngine). A reader decodes frames,
 * optionally captures accepted records to a per-stream WLCTRC02/03
 * file, and submits them to the engine; backpressure propagates
 * from a full bank queue through the blocked reader to the
 * client's TCP window. Telemetry requests are answered on the
 * requesting connection's own thread from the engine's seqlock
 * snapshots, so a STATS never stalls encode.
 *
 * Shutdown (requestStop(), a signal, --run-seconds, --max-writes or
 * --max-conns): stop accepting, shut down every connection socket,
 * join readers (each drains its admitted writes and closes its
 * capture file with a valid CRC'd footer), stop the engine, then
 * report exact merged results.
 */

#ifndef WLCRC_SERVE_SERVER_HH
#define WLCRC_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runner/experiment.hh"
#include "serve/engine.hh"
#include "tracefile/writer.hh"

namespace wlcrc::serve
{

/** Full service configuration (engine + lifecycle knobs). */
struct ServerConfig
{
    EngineConfig engine;
    uint16_t port = 0;       //!< 0 = ephemeral (see Server::port())
    /** Directory for per-stream capture files; "" = off. */
    std::string captureDir;
    /**
     * Container revision + codec for capture files. Defaults to the
     * historical uncompressed WLCTRC02; v3 + lz shrinks long
     * captures severalfold at a per-block compress cost the reader
     * thread absorbs. Either way the capture replays byte-identically
     * (the capture-replay equivalence tests cover both).
     */
    tracefile::WriterOptions captureOptions;
    uint64_t maxWrites = 0;  //!< stop after admitting this many (0 = off)
    double runSeconds = 0;   //!< stop after this much wall time (0 = off)
    unsigned maxConns = 0;   //!< stop after this many connections (0 = off)
};

/** Per-connection bookkeeping (registry entry + engine ticket). */
struct ConnState
{
    uint64_t id = 0;          //!< accept order
    int fd = -1;
    std::mutex fdMutex;       //!< guards fd close vs shutdown race
    std::atomic<uint32_t> streamId{0};
    std::atomic<bool> hasHello{false};
    std::atomic<bool> open{true};
    std::atomic<bool> clean{false};
    std::atomic<uint64_t> frames{0};
    ConnTicket ticket;
    std::string lastError;    //!< set once, before open -> false
};

/** The live write-stream service. */
class Server
{
  public:
    /** @throws std::runtime_error on bad scheme / capture dir. */
    explicit Server(const ServerConfig &cfg);

    /** Joins everything (requestStop() + wait() if still running). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen, start the engine and the accept loop.
     * @throws std::runtime_error if the socket cannot be bound.
     */
    void start();

    /** Bound TCP port (the ephemeral one when configured with 0). */
    uint16_t port() const { return port_; }

    /**
     * Ask the server to stop. Async-signal-safe (an atomic store),
     * so the CLI's SIGINT/SIGTERM handlers call it directly.
     */
    void requestStop() { stopFlag_.store(true); }

    /**
     * Block until a stop condition fires (requestStop, run-seconds,
     * max-writes, max-conns), then drain: close the listener, shut
     * down connections, join readers, stop the engine. On return
     * every capture file is closed and finalResult() is exact.
     */
    void wait();

    /**
     * Telemetry snapshot as JSON (docs/serve.md). Non-blocking with
     * respect to encode: built from seqlock snapshots and relaxed
     * counters. @p final marks the post-drain exact report.
     */
    std::string snapshotJson(bool final = false) const;

    /** Exact merged result; only valid after wait() returned. */
    runner::ExperimentResult finalResult() const;

    /** Why the server stopped ("signal", "max-writes", ...). */
    const std::string &stopReason() const { return stopReason_; }

    /** Writes admitted so far (for monitors/tests). */
    uint64_t accepted() const { return engine_.totalAccepted(); }

  private:
    void acceptLoop();
    runner::ExperimentResult resultShell() const;
    void runConnection(std::shared_ptr<ConnState> conn);
    void noteError(const std::string &name);
    std::string connSummaryJson(const ConnState &conn) const;
    void shutdownAll();

    ServerConfig cfg_;
    BankEngine engine_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    std::chrono::steady_clock::time_point startTime_;

    mutable std::mutex connMutex_;
    std::vector<std::shared_ptr<ConnState>> conns_;
    std::vector<std::thread> connThreads_;
    uint64_t opened_ = 0;
    std::atomic<uint64_t> closed_{0};

    mutable std::mutex errMutex_;
    std::map<std::string, uint64_t> errorCounts_;

    std::atomic<bool> stopFlag_{false};
    bool drained_ = false;
    std::string stopReason_;
};

} // namespace wlcrc::serve

#endif // WLCRC_SERVE_SERVER_HH
