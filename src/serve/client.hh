/**
 * @file
 * Client: a blocking client for the wlcrc_serve wire protocol.
 * tools/wlcrc_load runs many of these (one per connection thread);
 * the protocol-robustness tests use sendRaw() to speak malformed
 * frames at a real server.
 */

#ifndef WLCRC_SERVE_CLIENT_HH
#define WLCRC_SERVE_CLIENT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "trace/transaction.hh"

namespace wlcrc::serve
{

/** One blocking connection to a wlcrc_serve instance. */
class Client
{
  public:
    Client() = default;

    /** Closes the socket if still open. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to @p host:@p port (numeric IPv4 host).
     * @throws std::runtime_error on connect failure.
     */
    void connect(const std::string &host, uint16_t port);

    /** Send Hello with @p streamId. @throws on send failure. */
    void hello(uint32_t streamId);

    /**
     * Send @p n transactions as one Write frame. With @p wantAck the
     * frame carries the ack flag; follow with readAck().
     * @throws std::runtime_error on send failure, a server Error
     *         frame, or a disconnect.
     */
    void sendWrites(const trace::WriteTransaction *txns,
                    std::size_t n, bool wantAck);

    /**
     * Read the Ack for an acked Write frame.
     * @return the server's admitted-write count for this connection.
     */
    uint64_t readAck();

    /** StatsReq -> StatsReply round trip. @return the JSON text. */
    std::string stats();

    /**
     * Bye -> ByeAck round trip (the server drains this connection's
     * queued writes first). @return the summary JSON. The server
     * closes the connection after the ByeAck.
     */
    std::string bye();

    /** Test hook: push raw bytes down the socket. */
    void sendRaw(const void *data, std::size_t n);

    /** Close the socket now (mid-stream disconnect, tests). */
    void close();

    int fd() const { return fd_; }

  private:
    /**
     * Read one frame, expecting @p want. A server Error frame (or a
     * recv failure) becomes a std::runtime_error whose message
     * carries the error name.
     */
    void expectFrame(FrameType want, FrameHeader &h);

    int fd_ = -1;
    std::vector<uint8_t> payload_;
    std::vector<uint8_t> writeBuf_;
};

} // namespace wlcrc::serve

#endif // WLCRC_SERVE_CLIENT_HH
