#include "server.hh"

#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/simd.hh"
#include "runner/report.hh"
#include "runner/spec_codec.hh"
#include "serve/protocol.hh"
#include "tracefile/format.hh"
#include "tracefile/writer.hh"

namespace wlcrc::serve
{

namespace
{

/** CoV of a running stat (0 when the mean is 0 or no samples). */
double
covOf(const stats::RunningStat &s)
{
    return s.mean() != 0.0 ? s.stddev() / s.mean() : 0.0;
}

} // namespace

Server::Server(const ServerConfig &cfg)
    : cfg_(cfg), engine_(cfg.engine)
{
    if (!cfg_.captureDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.captureDir, ec);
        if (ec)
            throw std::runtime_error("cannot create capture dir " +
                                     cfg_.captureDir + ": " +
                                     ec.message());
    }
}

Server::~Server()
{
    requestStop();
    if (acceptThread_.joinable() || !drained_)
        wait();
}

void
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error(
            "cannot bind 127.0.0.1:" + std::to_string(cfg_.port) +
            ": " + std::strerror(errno));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("listen() failed");
    }
    startTime_ = std::chrono::steady_clock::now();
    engine_.start();
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        const int cfd = ::accept(listenFd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed by shutdownAll()
        }
        if (stopFlag_.load()) {
            ::close(cfd);
            continue;
        }
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);
        auto conn = std::make_shared<ConnState>();
        conn->fd = cfd;
        bool atCap = false;
        {
            std::lock_guard lock(connMutex_);
            conn->id = opened_++;
            conns_.push_back(conn);
            connThreads_.emplace_back(
                [this, conn] { runConnection(conn); });
            atCap = cfg_.maxConns && opened_ >= cfg_.maxConns;
        }
        if (atCap)
            break; // served the configured connection budget
    }
}

void
Server::runConnection(std::shared_ptr<ConnState> conn)
{
    std::vector<uint8_t> payload;
    std::unique_ptr<tracefile::TraceFileWriter> capture;
    bool helloSeen = false;
    bool clean = false;
    std::string err;
    try {
        for (;;) {
            FrameHeader h;
            const RecvStatus st = recvFrame(conn->fd, h, payload);
            if (st == RecvStatus::CleanEof) {
                // EOF without Bye: an error mid-stream, a harmless
                // probe before any frame.
                if (helloSeen)
                    err = "disconnect";
                else
                    clean = true;
                break;
            }
            if (st != RecvStatus::Ok) {
                err = recvErrorName(st);
                break;
            }
            const auto type = static_cast<FrameType>(h.type);
            if (type == FrameType::Hello) {
                if (payload.size() < 8) {
                    err = "bad-length";
                    break;
                }
                if (tracefile::getLe32(payload.data()) !=
                    protocolVersion) {
                    err = "bad-version";
                    break;
                }
                const uint32_t sid =
                    tracefile::getLe32(payload.data() + 4);
                conn->streamId.store(sid);
                conn->hasHello.store(true);
                helloSeen = true;
                if (!cfg_.captureDir.empty())
                    capture =
                        std::make_unique<tracefile::TraceFileWriter>(
                            cfg_.captureDir + "/stream-" +
                            std::to_string(sid) + ".wlctrc",
                            cfg_.captureOptions);
            } else if (type == FrameType::Write) {
                if (!helloSeen) {
                    err = "no-hello";
                    break;
                }
                if (payload.empty() ||
                    payload.size() % tracefile::recordBytes != 0) {
                    err = "bad-length";
                    break;
                }
                const std::size_t n =
                    payload.size() / tracefile::recordBytes;
                bool stopped = false;
                for (std::size_t i = 0; i < n; ++i) {
                    const trace::WriteTransaction txn =
                        tracefile::decodeRecord(
                            payload.data() +
                            i * tracefile::recordBytes);
                    if (!engine_.submit(txn, &conn->ticket)) {
                        stopped = true;
                        break;
                    }
                    // Captured exactly when admitted, in admission
                    // order — the file is the bank-order truth the
                    // offline equivalence replay relies on.
                    if (capture)
                        capture->write(txn);
                }
                if (stopped) {
                    err = "server-stop";
                    break;
                }
                conn->frames.fetch_add(1,
                                       std::memory_order_relaxed);
                if (h.flags & flagAck) {
                    uint8_t ack[8];
                    tracefile::putLe64(
                        ack, conn->ticket.accepted.load(
                                 std::memory_order_relaxed));
                    if (!sendFrame(conn->fd, FrameType::Ack, 0,
                                   ack, sizeof ack)) {
                        err = "disconnect";
                        break;
                    }
                }
                if (cfg_.maxWrites &&
                    engine_.totalAccepted() >= cfg_.maxWrites)
                    requestStop();
            } else if (type == FrameType::StatsReq) {
                const std::string json = snapshotJson(false);
                if (!sendFrame(conn->fd, FrameType::StatsReply, 0,
                               json.data(), json.size())) {
                    err = "disconnect";
                    break;
                }
            } else if (type == FrameType::Bye) {
                engine_.drainWait(conn->ticket);
                conn->clean.store(true); // before the summary
                const std::string json = connSummaryJson(*conn);
                sendFrame(conn->fd, FrameType::ByeAck, 0,
                          json.data(), json.size());
                clean = true;
                break;
            } else {
                err = "bad-type";
                break;
            }
        }
    } catch (const std::exception &e) {
        err = "internal";
        (void)e;
    }
    if (!err.empty())
        sendFrame(conn->fd, FrameType::Error, 0, err.data(),
                  err.size()); // best effort
    // Every admitted write must be encoded before the connection is
    // reported closed, so per-connection telemetry is final and the
    // capture (already complete) matches what was encoded.
    engine_.drainWait(conn->ticket);
    if (capture)
        capture->close();
    conn->lastError = err;
    conn->clean.store(clean);
    conn->open.store(false);
    {
        std::lock_guard lock(conn->fdMutex);
        ::close(conn->fd);
        conn->fd = -1;
    }
    if (!err.empty())
        noteError(err);
    closed_.fetch_add(1);
}

void
Server::noteError(const std::string &name)
{
    std::lock_guard lock(errMutex_);
    ++errorCounts_[name];
}

void
Server::wait()
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        if (stopFlag_.load()) {
            if (stopReason_.empty())
                stopReason_ = cfg_.maxWrites &&
                                      engine_.totalAccepted() >=
                                          cfg_.maxWrites
                                  ? "max-writes"
                                  : "stop-requested";
            break;
        }
        if (cfg_.runSeconds > 0 &&
            std::chrono::duration<double>(clock::now() -
                                          startTime_)
                    .count() >= cfg_.runSeconds) {
            stopReason_ = "run-seconds";
            break;
        }
        if (cfg_.maxConns && closed_.load() >= cfg_.maxConns) {
            stopReason_ = "max-conns";
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    stopFlag_.store(true);
    shutdownAll();
}

void
Server::shutdownAll()
{
    if (drained_)
        return;
    // 1. Stop accepting: closing the listener wakes accept().
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    // 2. Unblock every reader; each drains its admitted writes,
    //    closes its capture file and exits.
    {
        std::lock_guard lock(connMutex_);
        for (const auto &conn : conns_) {
            std::lock_guard fdLock(conn->fdMutex);
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard lock(connMutex_);
        threads.swap(connThreads_);
    }
    for (auto &t : threads)
        t.join();
    // 3. Only now stop the encode workers: nothing is left to
    //    admit, and the queues drain to empty before the join.
    engine_.stop();
    drained_ = true;
}

runner::ExperimentResult
Server::resultShell() const
{
    runner::ExperimentResult res;
    res.spec.scheme = cfg_.engine.scheme;
    res.spec.workload = "live";
    res.spec.seed = cfg_.engine.seed;
    res.spec.shards = engine_.banks();
    res.spec.lines = engine_.totalEncoded();
    res.spec.device.s3 = cfg_.engine.s3;
    res.spec.device.s4 = cfg_.engine.s4;
    res.spec.device.vnr = cfg_.engine.vnr;
    res.spec.device.wearEndurance = cfg_.engine.wearEndurance;
    res.replay = engine_.mergedResult();
    res.simdKernel = simd::kernelName(simd::activeKernel());
    res.ok = true;
    return res;
}

runner::ExperimentResult
Server::finalResult() const
{
    runner::ExperimentResult res = resultShell();
    if (auto wear = engine_.mergedWear()) {
        res.wear = wear->summary();
        res.projectedLifetime = wear->projectedLifetime(
            cfg_.engine.wearEndurance, res.replay.writes);
    }
    return res;
}

std::string
Server::connSummaryJson(const ConnState &conn) const
{
    std::ostringstream os;
    os << "{\"stream\":" << conn.streamId.load()
       << ",\"accepted\":"
       << conn.ticket.accepted.load(std::memory_order_relaxed)
       << ",\"encoded\":"
       << conn.ticket.encoded.load(std::memory_order_relaxed)
       << ",\"frames\":"
       << conn.frames.load(std::memory_order_relaxed)
       << ",\"clean\":" << (conn.clean.load() ? "true" : "false")
       << ",\"error\":\"" << runner::jsonEscape(conn.lastError)
       << "\"}";
    return os.str();
}

std::string
Server::snapshotJson(bool final) const
{
    const auto banks = engine_.snapshot();
    const trace::ReplayResult merged = engine_.mergedResult();
    const double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    const uint64_t encoded = engine_.totalEncoded();

    std::ostringstream os;
    os << "{\"serve_version\":1,\"final\":"
       << (final ? "true" : "false") << ",\"scheme\":\""
       << runner::jsonEscape(cfg_.engine.scheme)
       << "\",\"banks\":" << engine_.banks()
       << ",\"seed\":" << cfg_.engine.seed
       << ",\"queue_capacity\":" << cfg_.engine.queueCapacity
       << ",\"uptime_sec\":" << runner::formatDouble(uptime)
       << ",\"accepted\":" << engine_.totalAccepted()
       << ",\"encoded\":" << encoded << ",\"writes_per_sec\":"
       << runner::formatDouble(
              uptime > 0 ? static_cast<double>(encoded) / uptime
                         : 0.0)
       << ",\"energy_cov\":"
       << runner::formatDouble(covOf(merged.energyPj))
       << ",\"disturb_cov\":"
       << runner::formatDouble(covOf(merged.disturbErrors));
    if (!stopReason_.empty())
        os << ",\"stop_reason\":\""
           << runner::jsonEscape(stopReason_) << "\"";

    os << ",\"banks_detail\":[";
    for (std::size_t b = 0; b < banks.size(); ++b) {
        const auto &s = banks[b];
        os << (b ? "," : "") << "{\"bank\":" << b
           << ",\"writes\":" << s.writes
           << ",\"queue_depth\":" << s.queueDepth
           << ",\"stalls\":" << s.stalls;
        if (cfg_.engine.wearEndurance)
            os << ",\"wear_cov\":"
               << runner::formatDouble(s.wearCov);
        os << "}";
    }
    os << "]";

    os << ",\"connections\":[";
    {
        std::lock_guard lock(connMutex_);
        bool first = true;
        for (const auto &conn : conns_) {
            if (!conn->hasHello.load())
                continue; // stats-only probes are not streams
            if (!first)
                os << ",";
            first = false;
            os << "{\"stream\":" << conn->streamId.load()
               << ",\"accepted\":"
               << conn->ticket.accepted.load(
                      std::memory_order_relaxed)
               << ",\"encoded\":"
               << conn->ticket.encoded.load(
                      std::memory_order_relaxed)
               << ",\"frames\":"
               << conn->frames.load(std::memory_order_relaxed)
               << ",\"open\":"
               << (conn->open.load() ? "true" : "false")
               << ",\"clean\":"
               << (conn->clean.load() ? "true" : "false")
               << ",\"error\":\""
               << runner::jsonEscape(conn->open.load()
                                         ? std::string()
                                         : conn->lastError)
               << "\"}";
        }
    }
    os << "]";

    os << ",\"errors\":{";
    {
        std::lock_guard lock(errMutex_);
        bool first = true;
        for (const auto &[name, count] : errorCounts_) {
            os << (first ? "" : ",") << "\""
               << runner::jsonEscape(name) << "\":" << count;
            first = false;
        }
    }
    os << "}";

    // The standard result object (runner/report.hh): for the final
    // snapshot it is the exact merged replay the offline runner can
    // reproduce from a capture; live it merges the seqlock views.
    // Live snapshots never touch the wear trackers (the workers own
    // them); the per-bank wear_cov rows above carry the live signal
    // and the final report adds the exact merged wear block.
    runner::ExperimentResult res =
        final ? finalResult() : resultShell();
    if (!final) {
        res.replay = merged;
        res.spec.device.wearEndurance = 0;
    }
    os << ",\"result\":";
    runner::writeResultObject(os, res);
    os << "}";
    return os.str();
}

} // namespace wlcrc::serve
