/**
 * @file
 * Wire protocol of the live write-stream service (wlcrc_serve).
 *
 * A connection carries a sequence of length-prefixed frames over
 * TCP. Every frame opens with a fixed 12-byte little-endian header:
 *
 *   u32 magic        "WSV1" (0x31565357)
 *   u8  type         FrameType below
 *   u8  flags        bit 0 on a Write frame: acknowledge admission
 *   u16 reserved     0
 *   u32 payloadBytes length of the payload that follows
 *
 * Payloads:
 *   Hello      u32 protocolVersion (= 1), u32 streamId. Must be the
 *              first frame before any Write; the streamId names the
 *              connection in telemetry and capture files.
 *   Write      N x 136 B records in the WLCTRC record layout
 *              (tracefile/format.hh encodeRecord) — the wire format
 *              IS the trace format, so a captured stream is a
 *              replayable corpus with no re-encoding.
 *   StatsReq   empty; the server answers with a StatsReply.
 *   StatsReply JSON telemetry snapshot (docs/serve.md).
 *   Bye        empty; the server drains the connection's queued
 *              writes, answers with a ByeAck and closes.
 *   ByeAck     JSON per-connection summary.
 *   Ack        u64 writes admitted on this connection so far — the
 *              reply to a Write frame with the ack flag, sent after
 *              the frame's records are enqueued (so its round-trip
 *              time includes any backpressure stall).
 *   Error      ASCII error name (the same name telemetry counts),
 *              sent best-effort before the server closes a
 *              misbehaving connection.
 *
 * Framing errors never take down the server: each one is mapped to
 * a named per-connection error (recvErrorName) and counted in the
 * telemetry snapshot; other connections are unaffected.
 *
 * The byte-level framing (header layout, EINTR/short-read handling,
 * payload caps) lives in net/frame.hh and is shared with the
 * distributed-sweep protocol "WRK1" (runner/remote.hh); this header
 * pins the WSV1 magic, frame types and payload encodings on top.
 */

#ifndef WLCRC_SERVE_PROTOCOL_HH
#define WLCRC_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/frame.hh"

namespace wlcrc::serve
{

/** Frame magic: the bytes 'W','S','V','1' on the wire. */
inline constexpr uint32_t frameMagic = 0x31565357;
/** Serialized size of a frame header. */
inline constexpr uint32_t frameHeaderBytes = net::frameHeaderBytes;
/** Protocol generation carried in Hello. */
inline constexpr uint32_t protocolVersion = 1;
/** Upper bound on payloadBytes; larger frames are rejected. */
inline constexpr uint32_t maxFramePayload = 1u << 20;
/** Write-frame flag bit: reply with an Ack after admission. */
inline constexpr uint8_t flagAck = 0x01;

/** Frame types (header `type`). */
enum class FrameType : uint8_t
{
    Hello = 1,
    Write = 2,
    StatsReq = 3,
    StatsReply = 4,
    Bye = 5,
    ByeAck = 6,
    Ack = 7,
    Error = 8,
};

/** Decoded frame header (net/frame.hh). */
using FrameHeader = net::FrameHeader;

/** Outcome of reading one frame off a socket (net/frame.hh). */
using RecvStatus = net::RecvStatus;

/** Telemetry error name of a failed recv ("" for Ok/CleanEof). */
using net::recvErrorName;

/** Serialize @p h (with the magic) into @p dst[frameHeaderBytes]. */
void encodeFrameHeader(uint8_t *dst, const FrameHeader &h);

/**
 * Write @p n bytes to @p fd, restarting on EINTR / short writes.
 * @return false on any write error (peer gone).
 */
bool writeAll(int fd, const void *data, std::size_t n);

/**
 * Send one frame. @return false if the peer is gone — senders treat
 * that as a disconnect, never an exception.
 */
bool sendFrame(int fd, FrameType type, uint8_t flags,
               const void *payload, std::size_t payloadBytes);

/**
 * Read one frame into @p header / @p payload. @p payload is reused
 * across calls (resized, capacity kept), so a steady-state
 * connection loop performs no per-frame allocation once warm.
 */
RecvStatus recvFrame(int fd, FrameHeader &header,
                     std::vector<uint8_t> &payload);

} // namespace wlcrc::serve

#endif // WLCRC_SERVE_PROTOCOL_HH
