/**
 * @file
 * BankEngine: the encode core of the live write-stream service.
 *
 * Device state is sharded by bank exactly the way the offline
 * runner shards a replay: bank = lineAddr % banks, and bank b's
 * Replayer is seeded with shardSeed(seed, b, banks). Each bank owns
 * one encode worker thread fed by its own BoundedQueue, so
 * connections writing to disjoint banks never contend — the only
 * shared state between a producer and an encode is the bank's queue
 * mutex stripe. Because the sharding function, the seeds and the
 * per-bank arrival order match the runner's shard cursors, a
 * captured stream replayed offline with --shards <banks> reproduces
 * the engine's merged statistics bit for bit (the capture-replay
 * equivalence the serve tests enforce).
 *
 * Telemetry is captured without stalling encode: after every write,
 * a bank's worker publishes its ReplayResult into a per-bank
 * seqlock slot (two relaxed counter bumps around a trivially-
 * copyable struct copy). Snapshot readers retry until they observe
 * a stable epoch; the encode path never waits on a reader.
 */

#ifndef WLCRC_SERVE_ENGINE_HH
#define WLCRC_SERVE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coset/codec.hh"
#include "pcm/wear.hh"
#include "pcm/write_unit.hh"
#include "serve/queue.hh"
#include "trace/replay.hh"
#include "trace/transaction.hh"

namespace wlcrc::serve
{

/** Engine knobs (a subset of the server's configuration). */
struct EngineConfig
{
    std::string scheme = "WLCRC-16"; //!< factory codec name
    unsigned banks = 4;              //!< device shards / workers
    uint64_t seed = 1;               //!< master seed (shardSeed per bank)
    std::size_t queueCapacity = 1024; //!< per-bank ring capacity
    double s3 = 307.0;               //!< S3 SET energy override (pJ)
    double s4 = 547.0;               //!< S4 SET energy override (pJ)
    bool vnr = false;                //!< Verify-n-Restore per write
    uint64_t wearEndurance = 0;      //!< track wear when non-zero
};

/**
 * Per-connection admission ticket. Producers bump `accepted` as
 * they enqueue; the owning bank worker bumps `encoded` after the
 * write is applied. drainWait() blocks until the two meet — the
 * Bye/shutdown flush that guarantees a ByeAck (and a closed capture
 * file) covers every admitted write.
 */
struct ConnTicket
{
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> encoded{0};
};

/** One bank's telemetry row. */
struct BankSnapshot
{
    uint64_t writes = 0;     //!< writes encoded so far
    std::size_t queueDepth = 0;
    uint64_t stalls = 0;     //!< backpressure events (full pushes)
    double wearCov = 0.0;    //!< per-cell wear CoV (if tracked)
    trace::ReplayResult replay;
};

/** Address-sharded, mutex-striped encode engine. */
class BankEngine
{
  public:
    /** Builds codec + per-bank replayers; @throws on bad scheme. */
    explicit BankEngine(const EngineConfig &cfg);

    /** Joins workers (stop() if still running). */
    ~BankEngine();

    BankEngine(const BankEngine &) = delete;
    BankEngine &operator=(const BankEngine &) = delete;

    /** Spawn the per-bank encode workers. */
    void start();

    /**
     * Close every bank queue, drain what is already admitted, and
     * join the workers. Idempotent.
     */
    void stop();

    /**
     * Admit one write: route to bank lineAddr % banks and enqueue,
     * blocking under backpressure. @p ticket (may be null) is
     * credited on admission and again after encode; it must outlive
     * the engine's drain of this item — connections guarantee that
     * by drainWait()ing before teardown, and the server keeps every
     * ticket alive until the engine has stopped.
     * @return false once the engine is stopping (write not admitted).
     */
    bool submit(const trace::WriteTransaction &txn,
                ConnTicket *ticket);

    /** Block until every write admitted on @p ticket is encoded. */
    void drainWait(const ConnTicket &ticket) const;

    /** Writes admitted across all banks. */
    uint64_t totalAccepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

    /** Writes encoded across all banks. */
    uint64_t totalEncoded() const
    {
        return encoded_.load(std::memory_order_relaxed);
    }

    /**
     * Non-blocking per-bank telemetry snapshot (seqlock read; never
     * stalls a worker). Stable only in the sense of each bank's own
     * epoch — banks are sampled independently.
     */
    std::vector<BankSnapshot> snapshot() const;

    /**
     * Merged ReplayResult over all banks, folded in bank order —
     * the same merge order the offline runner uses for shards, so
     * the result is comparable field-for-field with a sharded
     * offline replay of the captured stream. Only exact after
     * stop(); beforehand it merges the live snapshots.
     */
    trace::ReplayResult mergedResult() const;

    /**
     * Merged per-cell wear tracker (bank order), or nullopt when
     * wear tracking is off. Call after stop().
     */
    std::optional<pcm::WearTracker> mergedWear() const;

    unsigned banks() const { return static_cast<unsigned>(banks_.size()); }
    const EngineConfig &config() const { return cfg_; }

  private:
    struct Item
    {
        trace::WriteTransaction txn;
        ConnTicket *ticket = nullptr;
    };

    /** One bank: queue + worker + replay state + seqlock slot. */
    struct Bank
    {
        explicit Bank(std::size_t queueCapacity)
            : queue(queueCapacity)
        {}

        BoundedQueue<Item> queue;
        std::unique_ptr<trace::Replayer> replayer;
        std::optional<pcm::WearTracker> wear;
        std::thread worker;

        // Seqlock: worker bumps seq to odd, copies result_ into
        // snap, bumps to even. Readers retry on odd/changed epochs.
        std::atomic<uint64_t> seq{0};
        trace::ReplayResult snap;
        std::atomic<uint64_t> writes{0};
        std::atomic<double> wearCov{0.0};
    };

    void workerLoop(Bank &bank);
    void publish(Bank &bank) const;
    trace::ReplayResult readSnap(const Bank &bank) const;

    EngineConfig cfg_;
    coset::CodecPtr codec_;
    pcm::WriteUnit unit_;
    std::vector<std::unique_ptr<Bank>> banks_;
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> encoded_{0};
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace wlcrc::serve

#endif // WLCRC_SERVE_ENGINE_HH
