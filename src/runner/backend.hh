/**
 * @file
 * Execution backends for the experiment runner — where a grid's
 * replay work actually happens. The runner (runner.hh) owns
 * ordering, caching and progress; a backend owns nothing but
 * execution, so every backend produces byte-identical results for
 * the same spec list:
 *
 *  - SerialBackend   runs every (spec, shard) inline on the calling
 *                    thread — the reference implementation;
 *  - ThreadBackend   one thread-pool task per (spec, shard), the
 *                    historical (and default) in-process engine;
 *  - ProcessBackend  one child worker process per grid point
 *                    (`wlcrc_sim --worker`): the spec crosses as a
 *                    canonicalSpec() temp file, the result comes
 *                    back as the JSON report on the child's stdout.
 *                    Grids too big for one address space — or whose
 *                    points might crash — run unchanged; a dying
 *                    worker fails its own point only. Specs that
 *                    cannot cross a process boundary (closure hooks,
 *                    in-memory sources) transparently run inline.
 *
 * Determinism: a backend only ever changes *where* shards execute.
 * Shard seeds come from the spec (shardSeed), shard merges happen
 * in fixed shard order, and results come back in spec order, so
 * serial, thread and process execution of the same grid are
 * byte-identical — tests/backend_test.cc and the golden bench suite
 * enforce it.
 */

#ifndef WLCRC_RUNNER_BACKEND_HH
#define WLCRC_RUNNER_BACKEND_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/** Executes spec lists; stateless apart from configuration. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** Stable identifier: "serial", "thread", "process", ... */
    virtual const char *name() const = 0;

    /**
     * Progress units run() will report — one taskDone() call each.
     * Defaults to the total shard count (in-process backends).
     */
    virtual std::size_t
    taskCount(const std::vector<ExperimentSpec> &specs) const;

    /**
     * Execute every spec; one result per spec, in spec order. A
     * failing spec yields ok = false with the error — never an
     * exception. @p taskDone (may be null) is invoked once per
     * progress unit, possibly from worker threads.
     */
    virtual std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone) const = 0;
};

/** Inline execution on the calling thread. */
class SerialBackend final : public ExecutionBackend
{
  public:
    const char *name() const override { return "serial"; }
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone) const override;
};

/** Thread-pooled execution, one task per (spec, shard). */
class ThreadBackend final : public ExecutionBackend
{
  public:
    const char *name() const override { return "thread"; }
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone) const override;
};

/** Child-process fan-out via the `--worker` protocol. */
class ProcessBackend final : public ExecutionBackend
{
  public:
    /**
     * @param workerBinary executable implementing `--worker FILE`
     *        (normally wlcrc_sim; it passes its own argv[0]).
     */
    explicit ProcessBackend(std::string workerBinary);

    const char *name() const override { return "process"; }
    /** One progress unit per grid point (child = whole spec). */
    std::size_t
    taskCount(const std::vector<ExperimentSpec> &specs) const
        override;
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone) const override;

    const std::string &workerBinary() const { return worker_; }

  private:
    ExperimentResult runWorker(const ExperimentSpec &spec) const;

    std::string worker_;
};

/**
 * Execute one spec on the calling thread: shards in shard order,
 * merged into one result. The unit every backend is built from —
 * also the body of `wlcrc_sim --worker`.
 */
ExperimentResult runSpecSerial(const ExperimentSpec &spec);

/** Shard count @p spec actually executes with (custom replay = 1). */
unsigned effectiveShards(const ExperimentSpec &spec);

/**
 * Backend by CLI/env name: "serial", "thread", "process" or
 * "remote" (the latter two require @p workerBinary — wlcrc_sim for
 * process, wlcrc_worker for remote; remote spawns its workers
 * locally at the first run and listens on an ephemeral loopback
 * port, see runner/remote.hh for externally managed clusters).
 * @throws std::invalid_argument on unknown names or a missing
 *         worker binary.
 */
std::shared_ptr<const ExecutionBackend>
makeBackend(const std::string &name,
            const std::string &workerBinary = {});

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_BACKEND_HH
