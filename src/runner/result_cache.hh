/**
 * @file
 * ResultCache: a directory of completed grid-point results keyed by
 * specHash(), so re-running a sweep only replays points whose spec
 * — or whose trace content — actually changed. One entry is one
 * JSON file `<dir>/<hash16>.json` holding the full cache key text
 * (collision guard) and the result object (docs/caching.md has the
 * byte-level story).
 *
 * Robustness contract: lookup() NEVER throws for a bad entry — a
 * missing, truncated, corrupt, colliding or version-mismatched file
 * is a miss, and the point replays. store() writes via a temp file
 * + rename, so a crashed run leaves no half-written entries behind.
 */

#ifndef WLCRC_RUNNER_RESULT_CACHE_HH
#define WLCRC_RUNNER_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/** Directory-backed result store keyed on ExperimentSpec hash. */
class ResultCache
{
  public:
    /**
     * Open (creating recursively if needed) the cache at @p dir.
     * @throws std::runtime_error if the directory cannot be
     *         created — a mistyped --cache-dir must fail loudly.
     */
    explicit ResultCache(std::string dir);

    /**
     * @return the cached result of @p spec, or nullopt on any kind
     * of miss. The returned result carries @p spec (with its live
     * source pointer), not the serialized coordinates.
     */
    std::optional<ExperimentResult>
    lookup(const ExperimentSpec &spec) const;

    /**
     * Persist @p result (which must be ok) under its spec's hash,
     * atomically. Callers gate on cacheableSpec().
     */
    void store(const ExperimentResult &result) const;

    const std::string &dir() const { return dir_; }

    /** Entry file a spec maps to (exists or not). */
    std::string entryPath(const ExperimentSpec &spec) const;

  private:
    std::string dir_;
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_RESULT_CACHE_HH
