/**
 * @file
 * ResultCache: a store of completed grid-point results keyed by
 * specHash(), so re-running a sweep only replays points whose spec
 * — or whose trace content — actually changed. One entry is one
 * JSON text holding the full cache key (collision guard) and the
 * result object (docs/caching.md has the byte-level story).
 *
 * The byte storage sits behind the CacheStore seam: the historical
 * DirCacheStore keeps entries as `<dir>/<hash16>.json` files, and a
 * RemoteCacheStore (runner/remote.hh) fetches/publishes the same
 * entry bytes from a head node over TCP, so a whole cluster shares
 * one cache. ResultCache owns the semantics — key text, collision
 * guard, version checks — and is store-agnostic.
 *
 * Robustness contract: lookup() NEVER throws for a bad entry — a
 * missing, truncated, corrupt, colliding or version-mismatched
 * entry (or a store that fails to answer) is a miss, and the point
 * replays. DirCacheStore publishes via a temp file + rename with a
 * per-(process, counter) unique temp name, so crashed runs leave no
 * half-written entries and concurrent writers of the same entry —
 * threads or processes — never collide on the temp path.
 */

#ifndef WLCRC_RUNNER_RESULT_CACHE_HH
#define WLCRC_RUNNER_RESULT_CACHE_HH

#include <memory>
#include <optional>
#include <string>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/**
 * Byte-level entry storage under ResultCache: entries are opaque
 * texts keyed by the 16-hex-digit spec hash. Implementations must
 * be safe to call from multiple threads, and put() of the same key
 * must be idempotent — last writer wins with a complete entry,
 * never an interleaving of two writers.
 */
class CacheStore
{
  public:
    virtual ~CacheStore() = default;

    /** Stable identifier: "dir" or "remote". */
    virtual const char *kind() const = 0;

    /**
     * @return the entry stored under @p hashHex, or nullopt if none.
     * May throw on transport failure — ResultCache::lookup() treats
     * that as a miss.
     */
    virtual std::optional<std::string>
    get(const std::string &hashHex) = 0;

    /**
     * Publish @p entry under @p hashHex (atomically replacing any
     * previous entry). @throws std::runtime_error on store failure.
     */
    virtual void put(const std::string &hashHex,
                     const std::string &entry) = 0;
};

/** Directory-backed store: one `<dir>/<hash16>.json` file per entry. */
class DirCacheStore final : public CacheStore
{
  public:
    /**
     * Open (creating recursively if needed) the store at @p dir.
     * @throws std::runtime_error if the directory cannot be
     *         created — a mistyped --cache-dir must fail loudly.
     */
    explicit DirCacheStore(std::string dir);

    const char *kind() const override { return "dir"; }
    std::optional<std::string>
    get(const std::string &hashHex) override;
    void put(const std::string &hashHex,
             const std::string &entry) override;

    const std::string &dir() const { return dir_; }

    /** Entry file a hash maps to (exists or not). */
    std::string entryPath(const std::string &hashHex) const;

  private:
    std::string dir_;
};

/**
 * @throws std::runtime_error unless @p hashHex is exactly 16
 * lowercase hex digits — the only keys specHashHex() produces.
 * Stores call this on every key, so a hostile remote client can
 * never turn a cache key into a path traversal.
 */
void checkCacheHash(const std::string &hashHex);

/** Result store keyed on ExperimentSpec hash. */
class ResultCache
{
  public:
    /** Directory-backed cache at @p dir (the historical form). */
    explicit ResultCache(std::string dir);

    /** Cache over any byte store (directory, remote head node). */
    explicit ResultCache(std::shared_ptr<CacheStore> store);

    /**
     * @return the cached result of @p spec, or nullopt on any kind
     * of miss. The returned result carries @p spec (with its live
     * source pointer), not the serialized coordinates.
     */
    std::optional<ExperimentResult>
    lookup(const ExperimentSpec &spec) const;

    /**
     * Persist @p result (which must be ok) under its spec's hash,
     * atomically. Callers gate on cacheableSpec().
     */
    void store(const ExperimentResult &result) const;

    CacheStore &byteStore() const { return *store_; }

    /**
     * Entry file a spec maps to (exists or not). Only meaningful
     * for a directory-backed cache.
     * @throws std::logic_error for non-directory stores.
     */
    std::string entryPath(const ExperimentSpec &spec) const;

    /**
     * Serialize @p result (which must be ok) as the entry text any
     * store keeps under specHashHex(result.spec) — shared by
     * store() and by tests that forge entries.
     */
    static std::string entryText(const ExperimentResult &result);

  private:
    std::shared_ptr<CacheStore> store_;
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_RESULT_CACHE_HH
