#include "grid.hh"

#include <set>
#include <stdexcept>
#include <utility>

#include "tracefile/source.hh"

namespace wlcrc::runner
{

ExperimentGrid &
ExperimentGrid::schemes(std::vector<std::string> v)
{
    schemes_.clear();
    schemes_.reserve(v.size());
    for (auto &name : v)
        schemes_.push_back({std::move(name), nullptr});
    return *this;
}

ExperimentGrid &
ExperimentGrid::schemeDefs(std::vector<SchemeDef> v)
{
    schemes_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::workloads(std::vector<std::string> v)
{
    workloads_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::randomSource()
{
    random_ = true;
    return *this;
}

ExperimentGrid &
ExperimentGrid::sources(
    std::vector<std::shared_ptr<const tracefile::TransactionSource>>
        v)
{
    sources_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::transactions(
    std::shared_ptr<const std::vector<trace::WriteTransaction>> txns)
{
    sources_ = {std::make_shared<const tracefile::VectorSource>(
        std::move(txns))};
    return *this;
}

ExperimentGrid &
ExperimentGrid::lineCounts(std::vector<uint64_t> v)
{
    lineCounts_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::lines(uint64_t n)
{
    lineCounts_ = {n};
    return *this;
}

ExperimentGrid &
ExperimentGrid::seeds(std::vector<uint64_t> v)
{
    seeds_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::seed(uint64_t s)
{
    seeds_ = {s};
    return *this;
}

ExperimentGrid &
ExperimentGrid::deviceConfigs(std::vector<DeviceConfig> v)
{
    configs_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::levelers(std::vector<wearlevel::LevelerConfig> v)
{
    levelers_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::endurances(std::vector<wearlevel::EnduranceConfig> v)
{
    endurances_ = std::move(v);
    return *this;
}

ExperimentGrid &
ExperimentGrid::lifetime(bool on)
{
    lifetime_ = on;
    return *this;
}

ExperimentGrid &
ExperimentGrid::shards(unsigned n)
{
    shards_ = n ? n : 1;
    return *this;
}

ExperimentGrid &
ExperimentGrid::partition(tracefile::Partition p)
{
    partition_ = p;
    return *this;
}

ExperimentGrid &
ExperimentGrid::customReplay(CustomReplayFn fn)
{
    customReplay_ = std::move(fn);
    return *this;
}

ExperimentGrid &
ExperimentGrid::cacheSalt(std::string salt)
{
    cacheSalt_ = std::move(salt);
    return *this;
}

std::size_t
ExperimentGrid::size() const
{
    const std::size_t streams =
        !workloads_.empty() ? workloads_.size()
        : random_           ? 1
        : sources_.empty()  ? 1
                            : sources_.size();
    return streams * schemes_.size() * lineCounts_.size() *
           seeds_.size() * configs_.size() * levelers_.size() *
           endurances_.size();
}

std::vector<ExperimentSpec>
ExperimentGrid::expand() const
{
    if (workloads_.empty() && !random_ && sources_.empty()) {
        throw std::invalid_argument(
            "ExperimentGrid: no transaction source configured "
            "(workloads / randomSource / sources / transactions)");
    }
    if (schemes_.empty() || lineCounts_.empty() || seeds_.empty() ||
        configs_.empty() || levelers_.empty() ||
        endurances_.empty()) {
        throw std::invalid_argument(
            "ExperimentGrid: an axis was set to an empty list; "
            "every configured axis needs at least one value");
    }
    std::set<std::string> names;
    for (const auto &s : schemes_) {
        if (!names.insert(s.name).second) {
            throw std::invalid_argument(
                "ExperimentGrid: duplicate scheme name '" + s.name +
                "' (report rows would be indistinguishable)");
        }
    }

    // One stream entry per outer-loop row group: named workloads,
    // the single random pseudo-workload, or the trace-source axis
    // (workload-major order is preserved for all three).
    struct Stream
    {
        std::string workload;
        std::shared_ptr<const tracefile::TransactionSource> source;
    };
    std::vector<Stream> streams;
    if (!workloads_.empty()) {
        for (const auto &w : workloads_)
            streams.push_back({w, nullptr});
    } else if (random_) {
        streams.push_back({"", nullptr});
    } else {
        std::set<std::string> labels;
        for (const auto &src : sources_) {
            if (!src) {
                throw std::invalid_argument(
                    "ExperimentGrid: null trace source");
            }
            if (sources_.size() > 1 &&
                !labels.insert(src->label()).second) {
                throw std::invalid_argument(
                    "ExperimentGrid: duplicate source label '" +
                    src->label() +
                    "' (report rows would be indistinguishable; "
                    "setLabel() each source)");
            }
            streams.push_back({"", src});
        }
    }

    std::vector<ExperimentSpec> specs;
    specs.reserve(size());
    for (const auto &stream : streams) {
        for (const auto &scheme : schemes_) {
            for (const uint64_t lines : lineCounts_) {
                for (const uint64_t seed : seeds_) {
                    for (const auto &cfg : configs_) {
                        for (const auto &lev : levelers_) {
                            for (const auto &end : endurances_) {
                                ExperimentSpec s;
                                s.scheme = scheme.name;
                                s.codecFactory = scheme.factory;
                                s.customReplay = customReplay_;
                                // Scheme-qualified so sibling defs
                                // in one salted grid get distinct
                                // cache keys.
                                if (!cacheSalt_.empty())
                                    s.cacheSalt = cacheSalt_ + ":" +
                                                  scheme.name;
                                s.workload = stream.workload;
                                s.random = stream.workload.empty() &&
                                           random_;
                                s.source = stream.source;
                                s.lines = lines;
                                s.seed = seed;
                                s.shards = shards_;
                                s.partition = partition_;
                                s.device = cfg;
                                s.leveler = lev;
                                s.endurance = end;
                                s.lifetime = lifetime_;
                                specs.push_back(std::move(s));
                            }
                        }
                    }
                }
            }
        }
    }
    return specs;
}

} // namespace wlcrc::runner
