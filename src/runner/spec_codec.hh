/**
 * @file
 * Canonical ExperimentSpec serialization — the single stable text
 * form behind both scaling features of the runner:
 *
 *  - the worker protocol: ProcessBackend writes canonicalSpec() to a
 *    temp file and `wlcrc_sim --worker` parses it back with
 *    parseSpec(), so a grid point crosses the process boundary with
 *    no ambiguity;
 *  - result caching: specHash() is an FNV-1a 64 over the canonical
 *    text plus the trace content digest and the report version, so
 *    a cache entry is invalidated by any semantic change to the
 *    point — scheme, stream identity or content, seeds, shards,
 *    device knobs — and by report-format bumps (docs/caching.md).
 *
 * The canonical text is line-oriented `key=value`, fixed key order,
 * doubles printed shortest-round-trip (std::to_chars), so equal
 * specs serialize byte-identically on any host.
 */

#ifndef WLCRC_RUNNER_SPEC_CODEC_HH
#define WLCRC_RUNNER_SPEC_CODEC_HH

#include <cstdint>
#include <string>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/** First line of every canonical spec / worker spec file. */
inline constexpr char specMagic[] = "wlcrc-spec-v1";

/**
 * Canonical text of @p spec. Hooks (codecFactory / customReplay) are
 * represented as presence markers — the closures themselves cannot
 * be serialized, which is exactly what processSerializable() and
 * cacheableSpec() gate on.
 */
std::string canonicalSpec(const ExperimentSpec &spec);

/**
 * Parse a canonicalSpec() text back into a runnable spec
 * (`stream=trace:<path>` re-opens the trace file).
 * @throws std::runtime_error on unknown keys, bad values, hook
 *         markers, or a missing/bad magic line.
 */
ExperimentSpec parseSpec(const std::string &text);

/**
 * True if @p spec can run in a child worker process: no codec
 * factory, no custom replay, and any source is file-backed. When
 * false and @p why is non-null, *why names the blocker.
 */
bool processSerializable(const ExperimentSpec &spec,
                         std::string *why = nullptr);

/**
 * True if @p spec's result may be cached: stock replay (custom
 * replay hooks produce side effects a cache hit would skip) and a
 * hash that actually pins the codec (factory specs need cacheSalt).
 */
bool cacheableSpec(const ExperimentSpec &spec);

/**
 * Full cache-key text: canonicalSpec() plus a `digest=` line (when
 * sourced) and a `report_version=` line. specHash() hashes exactly
 * this string, and cache entries store it verbatim so a hash
 * collision degrades to a miss, never to a wrong result.
 */
std::string specKeyText(const ExperimentSpec &spec);

/** 64-bit FNV-1a of specKeyText() — the cache key. */
uint64_t specHash(const ExperimentSpec &spec);

/** specHash() in fixed-width lowercase hex (cache file stem). */
std::string specHashHex(const ExperimentSpec &spec);

/** Shortest round-trip decimal form of @p v (std::to_chars). */
std::string formatDouble(double v);

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_SPEC_CODEC_HH
