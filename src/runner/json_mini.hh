/**
 * @file
 * Minimal strict JSON reader for the runner's machine-to-machine
 * paths: parsing worker-process reports (ProcessBackend) and result
 * cache entries back into ExperimentResults. The repo deliberately
 * has no external JSON dependency; this parser supports exactly the
 * documents the runner itself emits (objects, arrays, strings with
 * the reporter's escape set, numbers, booleans, null) and throws
 * std::runtime_error on anything malformed — a corrupt cache entry
 * must surface as a cache miss, never as a half-parsed result.
 *
 * Numbers keep their raw text alongside the parsed double, so u64
 * counters (write counts, wear) round-trip exactly instead of going
 * through a double.
 */

#ifndef WLCRC_RUNNER_JSON_MINI_HH
#define WLCRC_RUNNER_JSON_MINI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wlcrc::runner
{

/** One parsed JSON value (tree-owning, immutable after parse). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    std::string text; //!< string value, or a number's raw token
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool has(const std::string &key) const
    {
        return type == Type::Object && object.count(key) > 0;
    }

    /** @throws std::runtime_error if absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** @throws std::runtime_error on type/representation mismatch. */
    const std::string &asString() const;
    bool asBool() const;
    double asDouble() const;
    uint64_t asU64() const;
};

/**
 * Parse @p text as one JSON document (trailing garbage rejected).
 * @throws std::runtime_error with offset context on any error.
 */
JsonValue parseJson(const std::string &text);

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_JSON_MINI_HH
