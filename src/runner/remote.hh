/**
 * @file
 * Distributed sweep execution: a head node serves a work queue of
 * grid points over TCP, worker processes (tools/wlcrc_worker) pull
 * points, replay them through the stock in-process path and return
 * the versioned JSON report. The same connection doubles as a
 * shared result-cache transport, so a cluster-wide rerun replays
 * only novel points (docs/distributed.md).
 *
 * Wire protocol "WRK1", framed by net/frame.hh (the same 12-byte
 * little-endian header as the live service's "WSV1"):
 *
 *   worker → head
 *     Hello     u32 protocolVersion (= 1); must be first
 *     Pull      empty — request one point
 *     Result    u64 pointId, then the writeResultObject() JSON text
 *   head → worker
 *     Work      u64 pointId, then the canonicalSpec() text
 *     Retry     empty — nothing pending now, poll again
 *     Fin       empty — head is shutting down, exit the loop
 *   cache, either direction of request (any client may use them)
 *     CacheGet  16-byte entry hash (lowercase hex)
 *     CacheHit  the entry text              (reply to CacheGet)
 *     CacheMiss empty                       (reply to CacheGet)
 *     CachePut  16-byte entry hash, then the entry text
 *     PutAck    empty                       (reply to CachePut)
 *   either
 *     Error     ASCII error name, best-effort before a close
 *
 * Fault model — the part the fault-injection suite pins down:
 *
 *  - A worker that dies mid-point (SIGKILL, crash, network drop)
 *    surfaces as a disconnect; its issued points go back on the
 *    queue and another worker replays them ("worker-died").
 *  - A worker that hangs past the reissue deadline keeps its
 *    connection, but the point is reissued to the next Pull
 *    ("reissued"); whichever result arrives first wins and the
 *    loser is dropped ("duplicate-result"). Results are
 *    deterministic, so first-wins cannot change bytes.
 *  - A well-formed Result with ok=false is authoritative: the point
 *    failed in the replay path and is NOT retried — identical to
 *    ProcessBackend's in-band failure semantics.
 *  - A malformed frame or Result never takes the head down: named
 *    error count, best-effort Error frame, connection closed,
 *    issued points requeued.
 *
 * Determinism: like every backend, RemoteBackend only relocates
 * work. Workers run runSpecSerial() on a parseSpec() round-trip of
 * the head's canonicalSpec() text — the identical computation the
 * serial backend performs in-process — and results return through
 * the same writeResultObject()/readResultObject() codec the process
 * backend uses, so serial/thread/process/remote are byte-identical
 * (tests/remote_backend_test.cc enforces the full feature matrix).
 */

#ifndef WLCRC_RUNNER_REMOTE_HH
#define WLCRC_RUNNER_REMOTE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/backend.hh"
#include "runner/result_cache.hh"

namespace wlcrc::runner
{

/** Frame magic: the bytes 'W','R','K','1' on the wire. */
inline constexpr uint32_t workMagic = 0x314B5257;
/** Protocol generation carried in Hello. */
inline constexpr uint32_t workProtocolVersion = 1;
/** Upper bound on payloadBytes; larger frames are rejected. */
inline constexpr uint32_t maxWorkPayload = 1u << 20;

/** WRK1 frame types (header `type`). */
enum class WorkFrame : uint8_t
{
    Hello = 1,
    Pull = 2,
    Work = 3,
    Retry = 4,
    Fin = 5,
    Result = 6,
    CacheGet = 7,
    CacheHit = 8,
    CacheMiss = 9,
    CachePut = 10,
    PutAck = 11,
    Error = 12,
};

/** Head-node configuration. */
struct RemoteBackendOptions
{
    /** Listen port on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
    /**
     * wlcrc_worker executable to spawn locally at the first run();
     * empty = spawn nothing and rely on externally started workers
     * connecting to port().
     */
    std::string workerBinary;
    /**
     * Local workers to spawn when workerBinary is set; 0 = the
     * run's job count (max 1).
     */
    unsigned spawnWorkers = 0;
    /**
     * Straggler deadline: an issued point unanswered for this long
     * is put back on the queue for another worker. Generous by
     * default — reissue is for hung workers, not slow points.
     */
    double reissueSec = 30.0;
    /**
     * When set, the head serves this store to CacheGet/CachePut
     * clients — the cluster-shared result cache.
     */
    std::shared_ptr<CacheStore> serveCache;
};

/**
 * Head-node backend: serves the spec list as a pull-based work
 * queue on a loopback TCP port. The listener starts in the
 * constructor (so port() is immediately valid), persists across
 * run() calls, and closes on stop()/destruction — which also sends
 * Fin to connected workers and reaps any spawned ones.
 *
 * Specs that cannot cross a process boundary (closure hooks,
 * in-memory sources) transparently run inline on the calling
 * thread, exactly like ProcessBackend.
 */
class RemoteBackend final : public ExecutionBackend
{
  public:
    /** Binds and starts listening. @throws on bind failure. */
    explicit RemoteBackend(RemoteBackendOptions opts);
    ~RemoteBackend() override;

    const char *name() const override { return "remote"; }
    /** One progress unit per grid point (worker = whole spec). */
    std::size_t
    taskCount(const std::vector<ExperimentSpec> &specs) const
        override;
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone) const override;

    /** Bound listen port (valid from construction). */
    uint16_t port() const;

    /**
     * Shut down: Fin to connected workers, close the listener and
     * all connections, reap spawned workers (SIGKILL after a short
     * grace). Idempotent; the destructor calls it.
     */
    void stop();

    /**
     * Named fault counters accumulated since construction:
     * "worker-died", "reissued", "duplicate-result",
     * "malformed-result", "worker-reported-error", "bad-hello",
     * "bad-magic", "bad-frame-type", "oversized-frame",
     * "truncated-frame", "bad-cache-hash", "cache-put-failed".
     * Absent key = zero (docs/distributed.md tabulates them).
     */
    std::map<std::string, uint64_t> errorCounts() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One worker connection loop's configuration. */
struct WorkerOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /** Sleep between Retry polls (head idle), milliseconds. */
    int pollMs = 50;
    /** Fault injection: raise(SIGKILL) on receiving the Nth Work. */
    int killAfter = -1;
    /** Fault injection: hang (never answer) the Nth Work. */
    int hangAfter = -1;
};

/** What one worker loop did before the head said Fin. */
struct WorkerStats
{
    uint64_t pointsRun = 0; //!< Work frames answered with a Result
    uint64_t failures = 0;  //!< of which carried ok = false
};

/**
 * Connect to a head node and serve its queue until Fin (or the
 * head vanishes). Replays each point with runSpecSerial() on the
 * parsed spec; a spec that fails to parse or replay returns an
 * in-band ok=false Result. Never writes to stdout.
 * @throws std::runtime_error only if the initial connect fails.
 */
WorkerStats runWorkerLoop(const WorkerOptions &opts);

/**
 * CacheStore client over WRK1: GET/PUT entries from a head node's
 * served store. One connection, requests in lockstep under a lock —
 * cache traffic is tiny next to replay work. Transport failures
 * throw; ResultCache::lookup() degrades a throwing get() to a miss.
 */
class RemoteCacheStore final : public CacheStore
{
  public:
    /** @throws std::runtime_error if the connect fails. */
    RemoteCacheStore(const std::string &host, uint16_t port);
    ~RemoteCacheStore() override;

    const char *kind() const override { return "remote"; }
    std::optional<std::string>
    get(const std::string &hashHex) override;
    void put(const std::string &hashHex,
             const std::string &entry) override;

  private:
    int fd_ = -1;
    std::mutex mutex_;
    std::vector<uint8_t> payload_;
};

/**
 * Parse "host:port" or bare "port" (host defaults to 127.0.0.1).
 * @throws std::invalid_argument on a malformed or out-of-range
 *         port.
 */
std::pair<std::string, uint16_t>
parseHostPort(const std::string &text);

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_REMOTE_HH
