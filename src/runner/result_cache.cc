#include "result_cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "runner/json_mini.hh"
#include "runner/report.hh"
#include "runner/spec_codec.hh"

namespace wlcrc::runner
{

namespace fs = std::filesystem;

/** Entry format version, independent of kReportVersion. */
static constexpr int kCacheVersion = 1;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        throw std::runtime_error("ResultCache: empty directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw std::runtime_error("ResultCache: cannot create " +
                                 dir_ + ": " + ec.message());
}

std::string
ResultCache::entryPath(const ExperimentSpec &spec) const
{
    return dir_ + "/" + specHashHex(spec) + ".json";
}

std::optional<ExperimentResult>
ResultCache::lookup(const ExperimentSpec &spec) const
{
    try {
        std::ifstream in(entryPath(spec), std::ios::binary);
        if (!in)
            return std::nullopt; // no entry: plain miss
        std::stringstream buf;
        buf << in.rdbuf();

        const JsonValue doc = parseJson(buf.str());
        if (doc.at("cache_version").asU64() !=
            static_cast<uint64_t>(kCacheVersion))
            return std::nullopt;
        // The stored key text is the collision guard: equal hashes
        // with different keys degrade to a miss, never to a foreign
        // result. It also re-checks report_version (last key line).
        if (doc.at("spec").asString() != specKeyText(spec))
            return std::nullopt;
        ExperimentResult res =
            readResultObject(doc.at("result"), spec);
        if (!res.ok)
            return std::nullopt; // failures are never served
        return res;
    } catch (const std::exception &) {
        return std::nullopt; // corrupt entry: replay instead
    }
}

void
ResultCache::store(const ExperimentResult &result) const
{
    if (!result.ok)
        throw std::logic_error(
            "ResultCache::store: refusing to cache a failed result");

    const std::string path = entryPath(result.spec);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            throw std::runtime_error(
                "ResultCache: cannot write " + tmp);
        out << "{\"cache_version\":" << kCacheVersion
            << ",\n \"spec_hash\":\"" << specHashHex(result.spec)
            << "\",\n \"spec\":\""
            << jsonEscape(specKeyText(result.spec))
            << "\",\n \"result\":";
        writeResultObject(out, result);
        out << "}\n";
        if (!out.flush())
            throw std::runtime_error(
                "ResultCache: short write to " + tmp);
    }
    fs::rename(tmp, path); // atomic publish on POSIX
}

} // namespace wlcrc::runner
