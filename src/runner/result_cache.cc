#include "result_cache.hh"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "runner/json_mini.hh"
#include "runner/report.hh"
#include "runner/spec_codec.hh"

namespace wlcrc::runner
{

namespace fs = std::filesystem;

/** Entry format version, independent of kReportVersion. */
static constexpr int kCacheVersion = 1;

void
checkCacheHash(const std::string &hashHex)
{
    bool ok = hashHex.size() == 16;
    for (const char c : hashHex)
        ok = ok &&
             ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
    if (!ok)
        throw std::runtime_error("cache: bad entry hash \"" +
                                 hashHex + "\"");
}

DirCacheStore::DirCacheStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        throw std::runtime_error("cache: empty directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw std::runtime_error("cache: cannot create " + dir_ +
                                 ": " + ec.message());
}

std::string
DirCacheStore::entryPath(const std::string &hashHex) const
{
    checkCacheHash(hashHex);
    return dir_ + "/" + hashHex + ".json";
}

std::optional<std::string>
DirCacheStore::get(const std::string &hashHex)
{
    std::ifstream in(entryPath(hashHex), std::ios::binary);
    if (!in)
        return std::nullopt; // no entry: plain miss
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
DirCacheStore::put(const std::string &hashHex,
                   const std::string &entry)
{
    const std::string path = entryPath(hashHex);
    // The temp name must be unique per *writer*, not just per
    // process: the head node publishes concurrent remote PUTs from
    // several connection threads, and two threads sharing one
    // pid-suffixed temp file would interleave bytes and then race
    // the rename. pid keeps cross-process uniqueness; the counter
    // keeps cross-thread uniqueness.
    static std::atomic<uint64_t> seq{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            throw std::runtime_error("cache: cannot write " + tmp);
        out << entry;
        if (!out.flush())
            throw std::runtime_error("cache: short write to " + tmp);
    }
    fs::rename(tmp, path); // atomic publish on POSIX
}

ResultCache::ResultCache(std::string dir)
    : store_(std::make_shared<DirCacheStore>(std::move(dir)))
{
}

ResultCache::ResultCache(std::shared_ptr<CacheStore> store)
    : store_(std::move(store))
{
    if (!store_)
        throw std::runtime_error("ResultCache: null store");
}

std::string
ResultCache::entryPath(const ExperimentSpec &spec) const
{
    auto *dir = dynamic_cast<DirCacheStore *>(store_.get());
    if (!dir)
        throw std::logic_error(
            "ResultCache::entryPath: store has no paths");
    return dir->entryPath(specHashHex(spec));
}

std::optional<ExperimentResult>
ResultCache::lookup(const ExperimentSpec &spec) const
{
    try {
        const std::optional<std::string> entry =
            store_->get(specHashHex(spec));
        if (!entry)
            return std::nullopt; // no entry: plain miss

        const JsonValue doc = parseJson(*entry);
        if (doc.at("cache_version").asU64() !=
            static_cast<uint64_t>(kCacheVersion))
            return std::nullopt;
        // The stored key text is the collision guard: equal hashes
        // with different keys degrade to a miss, never to a foreign
        // result. It also re-checks report_version (last key line).
        if (doc.at("spec").asString() != specKeyText(spec))
            return std::nullopt;
        ExperimentResult res =
            readResultObject(doc.at("result"), spec);
        if (!res.ok)
            return std::nullopt; // failures are never served
        return res;
    } catch (const std::exception &) {
        return std::nullopt; // corrupt entry / dead store: replay
    }
}

std::string
ResultCache::entryText(const ExperimentResult &result)
{
    if (!result.ok)
        throw std::logic_error(
            "ResultCache: refusing to cache a failed result");
    std::ostringstream out;
    out << "{\"cache_version\":" << kCacheVersion
        << ",\n \"spec_hash\":\"" << specHashHex(result.spec)
        << "\",\n \"spec\":\""
        << jsonEscape(specKeyText(result.spec))
        << "\",\n \"result\":";
    writeResultObject(out, result);
    out << "}\n";
    return out.str();
}

void
ResultCache::store(const ExperimentResult &result) const
{
    store_->put(specHashHex(result.spec), entryText(result));
}

} // namespace wlcrc::runner
