#include "runner.hh"

#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/thread_pool.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::runner
{

namespace
{

/** Everything one shard task produces. */
struct ShardOutcome
{
    trace::ReplayResult replay;
    std::optional<pcm::WearTracker> wear;
    std::string error; // empty = success
};

/**
 * Replay shard @p shard of @p spec. The full transaction stream is
 * re-derived (or re-read from the shared vector) and filtered down
 * to this shard's addresses; synthesis is cheap relative to replay
 * and keeping shards source-independent avoids any cross-thread
 * coordination.
 */
ShardOutcome
runShard(const ExperimentSpec &spec, unsigned shard)
{
    ShardOutcome out;
    try {
        const auto energy = pcm::EnergyModel::withHighStateEnergies(
            spec.device.s3, spec.device.s4);
        const auto codec = core::makeCodec(spec.scheme, energy);
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        trace::Replayer rep(*codec, unit,
                            shardSeed(spec.seed, shard, spec.shards),
                            spec.device.vnr);
        if (spec.device.wearEndurance) {
            out.wear.emplace(codec->cellCount());
            rep.device().attachWearTracker(&*out.wear);
        }

        auto replayIfMine = [&](const trace::WriteTransaction &t) {
            if (shardOf(t.lineAddr, spec.shards) == shard)
                rep.step(t);
        };
        if (spec.txns) {
            for (const auto &t : *spec.txns)
                replayIfMine(t);
        } else if (spec.random) {
            trace::RandomWorkload random(spec.seed);
            for (uint64_t i = 0; i < spec.lines; ++i)
                replayIfMine(random.next());
        } else {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(spec.workload),
                spec.seed);
            for (uint64_t i = 0; i < spec.lines; ++i)
                replayIfMine(synth.next());
        }
        out.replay = rep.result();
    } catch (const std::exception &err) {
        out.error = err.what();
    }
    return out;
}

/** Merge per-shard outcomes (in shard order) into one result. */
ExperimentResult
mergeShards(const ExperimentSpec &spec,
            std::vector<ShardOutcome> &outcomes)
{
    ExperimentResult res;
    res.spec = spec;
    std::optional<pcm::WearTracker> wear;
    for (auto &o : outcomes) {
        if (!o.error.empty()) {
            res.error = o.error;
            return res;
        }
        res.replay.merge(o.replay);
        if (o.wear) {
            if (!wear)
                wear = std::move(o.wear);
            else
                wear->merge(*o.wear);
        }
    }
    if (wear) {
        res.wear = wear->summary();
        res.projectedLifetime = wear->projectedLifetime(
            spec.device.wearEndurance, res.replay.writes);
    }
    res.ok = true;
    return res;
}

} // namespace

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    // One outcome slot per (spec, shard); tasks only touch their
    // own slot, so no synchronisation is needed beyond the pool's.
    std::vector<std::vector<ShardOutcome>> outcomes(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        outcomes[i].resize(specs[i].shards ? specs[i].shards : 1);

    {
        ThreadPool pool(opts_.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            for (unsigned s = 0; s < outcomes[i].size(); ++s) {
                pool.submit([&specs, &outcomes, i, s] {
                    outcomes[i][s] = runShard(specs[i], s);
                });
            }
        }
        pool.wait();
    }

    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        results.push_back(mergeShards(specs[i], outcomes[i]));
    return results;
}

} // namespace wlcrc::runner
