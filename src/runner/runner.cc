#include "runner.hh"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/thread_pool.hh"
#include "tracefile/source.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::runner
{

namespace
{

/** Everything one shard task produces. */
struct ShardOutcome
{
    trace::ReplayResult replay;
    std::optional<pcm::WearTracker> wear;
    std::string error; // empty = success
};

/** Shard count a spec actually executes with. */
unsigned
effectiveShards(const ExperimentSpec &spec)
{
    // Custom replays consume the whole stream in one pass: the hook
    // owns its own state, which the runner cannot merge shard-wise.
    if (spec.customReplay)
        return 1;
    return spec.shards ? spec.shards : 1;
}

/**
 * Materialise a spec's full transaction stream, for hooks that want
 * it as a vector rather than a pull loop: synthesized specs
 * re-derive it from the seed, sourced specs gather their (possibly
 * on-disk) stream. Only custom replays pay this — the stock replay
 * path always streams.
 */
std::vector<trace::WriteTransaction>
materialiseStream(const ExperimentSpec &spec)
{
    if (spec.source)
        return tracefile::gather(*spec.source);
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(spec.lines);
    if (spec.random) {
        trace::RandomWorkload random(spec.seed);
        for (uint64_t i = 0; i < spec.lines; ++i)
            txns.push_back(random.next());
    } else {
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName(spec.workload), spec.seed);
        for (uint64_t i = 0; i < spec.lines; ++i)
            txns.push_back(synth.next());
    }
    return txns;
}

/**
 * Replay shard @p shard of @p spec. Synthesized streams are
 * re-derived per shard and filtered down to the shard's addresses
 * (synthesis is cheap relative to replay, and source-independent
 * shards need no cross-thread coordination); sourced streams open a
 * per-shard cursor that filters — and, for indexed containers,
 * block-prunes — on the source side, so a trace larger than RAM
 * replays without ever being materialised.
 */
ShardOutcome
runShard(const ExperimentSpec &spec, unsigned shard)
{
    ShardOutcome out;
    try {
        if (spec.customReplay) {
            // An in-memory source is borrowed, never copied per
            // grid point; anything else is gathered once.
            const auto *vec =
                dynamic_cast<const tracefile::VectorSource *>(
                    spec.source.get());
            out.replay =
                vec ? spec.customReplay(spec, vec->transactions())
                    : spec.customReplay(spec,
                                        materialiseStream(spec));
            return out;
        }
        const auto energy = pcm::EnergyModel::withHighStateEnergies(
            spec.device.s3, spec.device.s4);
        const auto codec = spec.codecFactory
                               ? spec.codecFactory(energy)
                               : core::makeCodec(spec.scheme, energy);
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        trace::Replayer rep(*codec, unit,
                            shardSeed(spec.seed, shard, spec.shards),
                            spec.device.vnr);
        if (spec.device.wearEndurance) {
            out.wear.emplace(codec->cellCount());
            rep.device().attachWearTracker(&*out.wear);
        }

        // Every path streams through Replayer::runBatch: the shard's
        // transactions are gathered into fixed blocks and encoded
        // via LineCodec::encodeBatch, amortising dispatch without
        // changing any result (batched == stepped, by construction).
        if (spec.source) {
            // The cursor filters (and block-prunes) source-side;
            // records arrive already restricted to this shard.
            auto cursor = spec.source->open(
                {spec.shards > 1 ? spec.shards : 1, shard});
            rep.runBatch([&](trace::WriteTransaction &slot) {
                auto t = cursor->next();
                if (!t)
                    return false;
                slot = *t;
                return true;
            });
        } else if (spec.random) {
            // Synthesized streams are re-derived per shard and
            // filtered down to the shard's addresses (synthesis is
            // cheap relative to replay, and source-independent
            // shards need no cross-thread coordination).
            trace::RandomWorkload random(spec.seed);
            uint64_t consumed = 0;
            rep.runBatch([&](trace::WriteTransaction &slot) {
                while (consumed < spec.lines) {
                    const trace::WriteTransaction &t = random.next();
                    ++consumed;
                    if (shardOf(t.lineAddr, spec.shards) == shard) {
                        slot = t;
                        return true;
                    }
                }
                return false;
            });
        } else {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(spec.workload),
                spec.seed);
            uint64_t consumed = 0;
            rep.runBatch([&](trace::WriteTransaction &slot) {
                while (consumed < spec.lines) {
                    const trace::WriteTransaction &t = synth.next();
                    ++consumed;
                    if (shardOf(t.lineAddr, spec.shards) == shard) {
                        slot = t;
                        return true;
                    }
                }
                return false;
            });
        }
        out.replay = rep.result();
    } catch (const std::exception &err) {
        out.error = err.what();
    }
    return out;
}

/** Merge per-shard outcomes (in shard order) into one result. */
ExperimentResult
mergeShards(const ExperimentSpec &spec,
            std::vector<ShardOutcome> &outcomes)
{
    ExperimentResult res;
    res.spec = spec;
    std::optional<pcm::WearTracker> wear;
    for (auto &o : outcomes) {
        if (!o.error.empty()) {
            res.error = o.error;
            return res;
        }
        res.replay.merge(o.replay);
        if (o.wear) {
            if (!wear)
                wear = std::move(o.wear);
            else
                wear->merge(*o.wear);
        }
    }
    if (wear) {
        res.wear = wear->summary();
        res.projectedLifetime = wear->projectedLifetime(
            spec.device.wearEndurance, res.replay.writes);
    }
    res.ok = true;
    return res;
}

/**
 * Serialises progress callbacks and derives the elapsed/ETA figures
 * from completed-task counts. The ETA assumes uniform task cost —
 * good enough for the benches' homogeneous replay grids.
 */
class ProgressMeter
{
  public:
    ProgressMeter(const ProgressFn &fn, std::size_t total)
        : fn_(fn), total_(total),
          start_(std::chrono::steady_clock::now())
    {
        if (fn_)
            fn_(snapshot(0));
    }

    void
    taskDone()
    {
        if (!fn_)
            return;
        std::lock_guard lock(mutex_);
        fn_(snapshot(++done_));
    }

  private:
    RunProgress
    snapshot(std::size_t done) const
    {
        RunProgress p;
        p.tasksDone = done;
        p.tasksTotal = total_;
        p.elapsedSec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        p.etaSec = done ? p.elapsedSec / done * (total_ - done) : 0;
        return p;
    }

    const ProgressFn &fn_;
    const std::size_t total_;
    const std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
};

} // namespace

ProgressFn
stderrProgress(std::string label)
{
    return [label = std::move(label)](const RunProgress &p) {
        std::fprintf(stderr,
                     "\r%s: %zu/%zu (%3.0f%%) elapsed %.1fs "
                     "eta %.1fs ",
                     label.c_str(), p.tasksDone, p.tasksTotal,
                     100.0 * p.fraction(), p.elapsedSec, p.etaSec);
        if (p.tasksDone == p.tasksTotal)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    // One outcome slot per (spec, shard); tasks only touch their
    // own slot, so no synchronisation is needed beyond the pool's.
    std::vector<std::vector<ShardOutcome>> outcomes(specs.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        outcomes[i].resize(effectiveShards(specs[i]));
        total += outcomes[i].size();
    }

    {
        ProgressMeter meter(opts_.progress, total);
        ThreadPool pool(opts_.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            for (unsigned s = 0; s < outcomes[i].size(); ++s) {
                pool.submit([&specs, &outcomes, &meter, i, s] {
                    outcomes[i][s] = runShard(specs[i], s);
                    meter.taskDone();
                });
            }
        }
        pool.wait();
    }

    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        results.push_back(mergeShards(specs[i], outcomes[i]));
    return results;
}

} // namespace wlcrc::runner
