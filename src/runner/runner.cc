#include "runner.hh"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>

#include "runner/backend.hh"
#include "runner/result_cache.hh"
#include "runner/spec_codec.hh"

namespace wlcrc::runner
{

namespace
{

/**
 * Serialises progress callbacks and derives the elapsed/ETA figures
 * from completed-task counts. The ETA assumes uniform task cost —
 * good enough for the benches' homogeneous replay grids.
 */
class ProgressMeter
{
  public:
    ProgressMeter(const ProgressFn &fn, std::size_t total)
        : fn_(fn), total_(total),
          start_(std::chrono::steady_clock::now())
    {
        if (fn_)
            fn_(snapshot(0));
    }

    void
    taskDone()
    {
        if (!fn_)
            return;
        std::lock_guard lock(mutex_);
        fn_(snapshot(++done_));
    }

  private:
    RunProgress
    snapshot(std::size_t done) const
    {
        RunProgress p;
        p.tasksDone = done;
        p.tasksTotal = total_;
        p.elapsedSec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        p.etaSec = done ? p.elapsedSec / done * (total_ - done) : 0;
        return p;
    }

    const ProgressFn &fn_;
    const std::size_t total_;
    const std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
};

} // namespace

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << points << " point" << (points == 1 ? "" : "s") << ": "
       << cacheHits << " hit" << (cacheHits == 1 ? "" : "s") << ", "
       << replayed << " replayed, " << stored << " stored";
    if (uncacheable)
        os << " (" << uncacheable << " uncacheable)";
    if (storeFailures)
        os << " [" << storeFailures << " store failures]";
    return os.str();
}

ProgressFn
stderrProgress(std::string label)
{
    return [label = std::move(label)](const RunProgress &p) {
        std::fprintf(stderr,
                     "\r%s: %zu/%zu (%3.0f%%) elapsed %.1fs "
                     "eta %.1fs ",
                     label.c_str(), p.tasksDone, p.tasksTotal,
                     100.0 * p.fraction(), p.elapsedSec, p.etaSec);
        if (p.tasksDone == p.tasksTotal)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    static const ThreadBackend defaultBackend;
    const ExecutionBackend &backend =
        opts_.backend ? *opts_.backend : defaultBackend;

    std::optional<ResultCache> cache;
    if (opts_.cacheStore)
        cache.emplace(opts_.cacheStore);
    else if (!opts_.cacheDir.empty())
        cache.emplace(opts_.cacheDir);

    RunStats stats;
    stats.points = specs.size();

    // Consult the cache point-wise; anything not served becomes the
    // miss list the backend executes (in original relative order,
    // so backend results map straight back onto their slots).
    std::vector<std::optional<ExperimentResult>> served(specs.size());
    std::vector<std::size_t> missSlot;
    std::vector<ExperimentSpec> misses;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (cache && cacheableSpec(specs[i])) {
            if (auto hit = cache->lookup(specs[i])) {
                served[i] = std::move(*hit);
                ++stats.cacheHits;
                continue;
            }
        } else if (cache) {
            ++stats.uncacheable;
        }
        missSlot.push_back(i);
        misses.push_back(specs[i]);
    }
    stats.replayed = misses.size();

    std::vector<ExperimentResult> fresh;
    {
        ProgressMeter meter(opts_.progress,
                            backend.taskCount(misses));
        fresh = backend.run(misses, opts_.jobs,
                            [&meter] { meter.taskDone(); });
    }

    if (cache) {
        for (const auto &r : fresh) {
            if (r.ok && cacheableSpec(r.spec)) {
                // Storing is an optimization: a full disk or a
                // vanished cache dir must cost the entry, never
                // the sweep's computed results.
                try {
                    cache->store(r);
                    ++stats.stored;
                } catch (const std::exception &) {
                    ++stats.storeFailures;
                }
            }
        }
    }

    std::vector<ExperimentResult> results(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        if (served[i])
            results[i] = std::move(*served[i]);
    for (std::size_t k = 0; k < missSlot.size(); ++k)
        results[missSlot[k]] = std::move(fresh[k]);

    if (opts_.stats)
        *opts_.stats += stats;
    return results;
}

} // namespace wlcrc::runner
