#include "backend.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include <sys/wait.h>
#include <unistd.h>

#include "common/simd.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"
#include "runner/json_mini.hh"
#include "runner/remote.hh"
#include "wearlevel/lifetime.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "runner/spec_codec.hh"
#include "runner/thread_pool.hh"
#include "tracefile/source.hh"
#include "trace/workload.hh"
#include "wlcrc/factory.hh"

namespace wlcrc::runner
{

namespace
{

/** Everything one shard task produces. */
struct ShardOutcome
{
    trace::ReplayResult replay;
    std::optional<pcm::WearTracker> wear;
    wearlevel::LifetimeResult lifetime; //!< leveled/lifetime specs
    std::string error; // empty = success
};

/**
 * Materialise a spec's full transaction stream, for hooks that want
 * it as a vector rather than a pull loop: synthesized specs
 * re-derive it from the seed, sourced specs gather their (possibly
 * on-disk) stream. Only custom replays pay this — the stock replay
 * path always streams.
 */
std::vector<trace::WriteTransaction>
materialiseStream(const ExperimentSpec &spec)
{
    if (spec.source)
        return tracefile::gather(*spec.source);
    std::vector<trace::WriteTransaction> txns;
    txns.reserve(spec.lines);
    if (spec.random) {
        trace::RandomWorkload random(spec.seed);
        for (uint64_t i = 0; i < spec.lines; ++i)
            txns.push_back(random.next());
    } else {
        trace::TraceSynthesizer synth(
            trace::WorkloadProfile::byName(spec.workload), spec.seed);
        for (uint64_t i = 0; i < spec.lines; ++i)
            txns.push_back(synth.next());
    }
    return txns;
}

/**
 * Replay shard @p shard of @p spec. Synthesized streams are
 * re-derived per shard and filtered down to the shard's addresses
 * (synthesis is cheap relative to replay, and source-independent
 * shards need no cross-thread coordination); sourced streams open a
 * per-shard cursor that filters — and, for indexed containers,
 * block-prunes — on the source side, so a trace larger than RAM
 * replays without ever being materialised.
 */
ShardOutcome
runShard(const ExperimentSpec &spec, unsigned shard)
{
    ShardOutcome out;
    try {
        if (spec.partition == tracefile::Partition::range &&
            !spec.source)
            throw std::runtime_error(
                "partition=range requires a trace source "
                "(--trace-in): synthesized streams have no stored "
                "address bounds to slice");
        if (spec.customReplay) {
            // An in-memory source is borrowed, never copied per
            // grid point; anything else is gathered once.
            const auto *vec =
                dynamic_cast<const tracefile::VectorSource *>(
                    spec.source.get());
            out.replay =
                vec ? spec.customReplay(spec, vec->transactions())
                    : spec.customReplay(spec,
                                        materialiseStream(spec));
            return out;
        }
        const auto energy = pcm::EnergyModel::withHighStateEnergies(
            spec.device.s3, spec.device.s4);
        const auto codec = spec.codecFactory
                               ? spec.codecFactory(energy)
                               : core::makeCodec(spec.scheme, energy);
        const pcm::WriteUnit unit{energy, pcm::DisturbanceModel()};
        if (spec.lifetime || spec.leveler.active()) {
            // Leveled and lifetime replays need one globally
            // consistent line mapping, so they always run as a
            // single shard (effectiveShards() == 1) with the spec's
            // own seed, and the LifetimeEngine drives the device.
            if (spec.lifetime && !spec.endurance.active())
                throw std::runtime_error(
                    "lifetime replay requires an endurance config "
                    "(mean per-cell budget > 0)");
            wearlevel::LifetimeEngine::Options lopts;
            lopts.leveler = spec.leveler;
            lopts.endurance = spec.endurance;
            lopts.seed = spec.seed;
            lopts.vnr = spec.device.vnr;
            wearlevel::LifetimeEngine engine(*codec, unit, lopts);
            out.lifetime =
                engine.run(materialiseStream(spec), spec.lifetime);
            out.replay = engine.replayResult();
            if (spec.device.wearEndurance || spec.keepWearTracker)
                out.wear.emplace(engine.wearTracker());
            return out;
        }
        trace::Replayer rep(*codec, unit,
                            shardSeed(spec.seed, shard, spec.shards),
                            spec.device.vnr);
        if (spec.device.wearEndurance || spec.keepWearTracker) {
            out.wear.emplace(codec->cellCount());
            rep.device().attachWearTracker(&*out.wear);
        }

        // Every path streams through Replayer::runBatch: the shard's
        // transactions are gathered into fixed blocks and encoded
        // via LineCodec::encodeBatch, amortising dispatch without
        // changing any result (batched == stepped, by construction).
        if (spec.source) {
            // The cursor filters (and block-prunes) source-side;
            // records arrive already restricted to this shard.
            tracefile::ShardFilter filter{
                spec.shards > 1 ? spec.shards : 1, shard};
            if (spec.partition == tracefile::Partition::range &&
                filter.shards > 1)
                filter = tracefile::rangePartition(
                    spec.source->addrBounds(), filter.shards,
                    shard);
            auto cursor = spec.source->open(filter);
            rep.runBatch([&](trace::WriteTransaction &slot) {
                auto t = cursor->next();
                if (!t)
                    return false;
                slot = *t;
                return true;
            });
        } else if (spec.random) {
            // Synthesized streams are re-derived per shard and
            // filtered down to the shard's addresses (synthesis is
            // cheap relative to replay, and source-independent
            // shards need no cross-thread coordination).
            trace::RandomWorkload random(spec.seed);
            uint64_t consumed = 0;
            rep.runBatch([&](trace::WriteTransaction &slot) {
                while (consumed < spec.lines) {
                    const trace::WriteTransaction &t = random.next();
                    ++consumed;
                    if (shardOf(t.lineAddr, spec.shards) == shard) {
                        slot = t;
                        return true;
                    }
                }
                return false;
            });
        } else {
            trace::TraceSynthesizer synth(
                trace::WorkloadProfile::byName(spec.workload),
                spec.seed);
            uint64_t consumed = 0;
            rep.runBatch([&](trace::WriteTransaction &slot) {
                while (consumed < spec.lines) {
                    const trace::WriteTransaction &t = synth.next();
                    ++consumed;
                    if (shardOf(t.lineAddr, spec.shards) == shard) {
                        slot = t;
                        return true;
                    }
                }
                return false;
            });
        }
        out.replay = rep.result();
    } catch (const std::exception &err) {
        out.error = err.what();
    }
    return out;
}

/** Merge per-shard outcomes (in shard order) into one result. */
ExperimentResult
mergeShards(const ExperimentSpec &spec,
            std::vector<ShardOutcome> &outcomes)
{
    ExperimentResult res;
    res.spec = spec;
    std::optional<pcm::WearTracker> wear;
    for (auto &o : outcomes) {
        if (!o.error.empty()) {
            res.error = o.error;
            return res;
        }
        res.replay.merge(o.replay);
        if (o.wear) {
            if (!wear)
                wear = std::move(o.wear);
            else
                wear->merge(*o.wear);
        }
    }
    if (spec.lifetime || spec.leveler.active())
        res.lifetime = std::move(outcomes.front().lifetime);
    if (wear) {
        res.wear = wear->summary();
        res.projectedLifetime = wear->projectedLifetime(
            spec.device.wearEndurance, res.replay.writes);
        if (spec.keepWearTracker) {
            res.wearTracker = std::make_shared<pcm::WearTracker>(
                std::move(*wear));
        }
    }
    res.simdKernel = simd::kernelName(simd::activeKernel());
    res.ok = true;
    return res;
}

/** Single-quote @p s for /bin/sh (popen command lines). */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

void
notify(const std::function<void()> &taskDone)
{
    if (taskDone)
        taskDone();
}

} // namespace

unsigned
effectiveShards(const ExperimentSpec &spec)
{
    // Custom replays consume the whole stream in one pass: the hook
    // owns its own state, which the runner cannot merge shard-wise.
    if (spec.customReplay)
        return 1;
    // A leveler's logical-to-physical mapping (and the death point
    // of a lifetime replay) spans the whole address space; shards
    // would each level their own partition and diverge.
    if (spec.lifetime || spec.leveler.active())
        return 1;
    return spec.shards ? spec.shards : 1;
}

ExperimentResult
runSpecSerial(const ExperimentSpec &spec)
{
    std::vector<ShardOutcome> outcomes(effectiveShards(spec));
    for (unsigned s = 0; s < outcomes.size(); ++s)
        outcomes[s] = runShard(spec, s);
    return mergeShards(spec, outcomes);
}

std::size_t
ExecutionBackend::taskCount(
    const std::vector<ExperimentSpec> &specs) const
{
    std::size_t total = 0;
    for (const auto &s : specs)
        total += effectiveShards(s);
    return total;
}

// ------------------------------------------------------------ serial

std::vector<ExperimentResult>
SerialBackend::run(const std::vector<ExperimentSpec> &specs,
                   unsigned /*jobs*/,
                   const std::function<void()> &taskDone) const
{
    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (const auto &spec : specs) {
        std::vector<ShardOutcome> outcomes(effectiveShards(spec));
        for (unsigned s = 0; s < outcomes.size(); ++s) {
            outcomes[s] = runShard(spec, s);
            notify(taskDone);
        }
        results.push_back(mergeShards(spec, outcomes));
    }
    return results;
}

// ------------------------------------------------------------ thread

std::vector<ExperimentResult>
ThreadBackend::run(const std::vector<ExperimentSpec> &specs,
                   unsigned jobs,
                   const std::function<void()> &taskDone) const
{
    // One outcome slot per (spec, shard); tasks only touch their
    // own slot, so no synchronisation is needed beyond the pool's.
    std::vector<std::vector<ShardOutcome>> outcomes(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        outcomes[i].resize(effectiveShards(specs[i]));

    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            for (unsigned s = 0; s < outcomes[i].size(); ++s) {
                pool.submit([&specs, &outcomes, &taskDone, i, s] {
                    outcomes[i][s] = runShard(specs[i], s);
                    notify(taskDone);
                });
            }
        }
        pool.wait();
    }

    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        results.push_back(mergeShards(specs[i], outcomes[i]));
    return results;
}

// ----------------------------------------------------------- process

ProcessBackend::ProcessBackend(std::string workerBinary)
    : worker_(std::move(workerBinary))
{
    if (worker_.empty())
        throw std::invalid_argument(
            "ProcessBackend: worker binary path is empty");
}

std::size_t
ProcessBackend::taskCount(
    const std::vector<ExperimentSpec> &specs) const
{
    return specs.size();
}

ExperimentResult
ProcessBackend::runWorker(const ExperimentSpec &spec) const
{
    namespace fs = std::filesystem;

    ExperimentResult res;
    res.spec = spec;

    // Unique per (pid, run-lifetime counter): concurrent runs and
    // concurrent tasks never collide.
    static std::atomic<uint64_t> counter{0};
    std::ostringstream name;
    name << "wlcrc-worker-" << ::getpid() << '-'
         << counter.fetch_add(1);
    const fs::path specPath =
        fs::temp_directory_path() / (name.str() + ".spec");
    const fs::path errPath =
        fs::temp_directory_path() / (name.str() + ".stderr");

    try {
        {
            std::ofstream out(specPath, std::ios::binary);
            out << canonicalSpec(spec);
            // A truncated spec file must fail here, not replay the
            // wrong point in the child (parseSpec also rejects
            // missing fields as a second line of defence).
            if (!out.flush())
                throw std::runtime_error(
                    "cannot write worker spec file " +
                    specPath.string());
        }

        // The child's JSON report (stdout) is the whole protocol;
        // replay failures come back in-band as ok=false objects.
        // Its stderr goes to a side file so a protocol-level death
        // (unreadable spec, bad binary) keeps its root cause.
        const std::string cmd = shellQuote(worker_) + " --worker " +
                                shellQuote(specPath.string()) +
                                " 2>" +
                                shellQuote(errPath.string());
        FILE *pipe = ::popen(cmd.c_str(), "r");
        if (!pipe)
            throw std::runtime_error("popen failed for worker " +
                                     worker_);
        std::string out;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
            out.append(buf, n);
        const int status = ::pclose(pipe);
        if (status != 0) {
            std::ostringstream what;
            if (WIFEXITED(status))
                what << "worker exited with status "
                     << WEXITSTATUS(status);
            else if (WIFSIGNALED(status))
                what << "worker killed by signal "
                     << WTERMSIG(status);
            else
                what << "worker failed (wait status " << status
                     << ")";
            std::ifstream errIn(errPath, std::ios::binary);
            std::stringstream childErr;
            childErr << errIn.rdbuf();
            if (!childErr.str().empty())
                what << "; stderr: " << childErr.str();
            what << " (cmd: " << cmd << ")";
            throw std::runtime_error(what.str());
        }

        const JsonValue doc = parseJson(out);
        if (doc.type != JsonValue::Type::Array ||
            doc.array.size() != 1)
            throw std::runtime_error(
                "worker report is not a 1-element JSON array");
        res = readResultObject(doc.array[0], spec);
    } catch (const std::exception &err) {
        res = ExperimentResult{};
        res.spec = spec;
        res.error = std::string("process backend: ") + err.what();
    }

    std::error_code ec;
    fs::remove(specPath, ec); // best effort
    fs::remove(errPath, ec);
    return res;
}

std::vector<ExperimentResult>
ProcessBackend::run(const std::vector<ExperimentSpec> &specs,
                    unsigned jobs,
                    const std::function<void()> &taskDone) const
{
    std::vector<ExperimentResult> results(specs.size());
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool.submit([this, &specs, &results, &taskDone, i] {
            // Closure hooks and in-memory streams cannot cross the
            // process boundary; they run inline so a mixed grid
            // still completes (the fallback is equivalent — every
            // backend computes identical results).
            if (processSerializable(specs[i]))
                results[i] = runWorker(specs[i]);
            else
                results[i] = runSpecSerial(specs[i]);
            notify(taskDone);
        });
    }
    pool.wait();
    return results;
}

// -------------------------------------------------------------- free

std::shared_ptr<const ExecutionBackend>
makeBackend(const std::string &name,
            const std::string &workerBinary)
{
    if (name == "serial")
        return std::make_shared<SerialBackend>();
    if (name == "thread")
        return std::make_shared<ThreadBackend>();
    if (name == "process") {
        if (workerBinary.empty())
            throw std::invalid_argument(
                "backend 'process' needs a worker binary "
                "(wlcrc_sim passes itself; benches read "
                "WLCRC_WORKER_BIN)");
        return std::make_shared<ProcessBackend>(workerBinary);
    }
    if (name == "remote") {
        if (workerBinary.empty())
            throw std::invalid_argument(
                "backend 'remote' needs a worker binary "
                "(wlcrc_worker; benches read WLCRC_WORKER_BIN) — "
                "for externally managed workers construct "
                "RemoteBackend directly");
        RemoteBackendOptions opts;
        opts.workerBinary = workerBinary;
        return std::make_shared<RemoteBackend>(std::move(opts));
    }
    throw std::invalid_argument(
        "unknown backend '" + name +
        "' (expected serial, thread, process or remote)");
}

} // namespace wlcrc::runner
