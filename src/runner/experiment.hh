/**
 * @file
 * Experiment descriptions for the parallel experiment runner: one
 * ExperimentSpec pins down a single {codec scheme, workload, line
 * count, device config, seed} evaluation point of the paper's
 * Section VII grid, and ExperimentResult carries its merged metrics.
 *
 * Sharding: a spec's transaction stream is partitioned into
 * `shards` sub-streams by line address (addr % shards), so every
 * line's full write history lands in exactly one shard and priming /
 * differential-write state stays coherent. Shard s replays on a
 * device seeded with childSeed(seed, s) when shards > 1; a
 * single-shard spec uses `seed` directly and is bit-identical with
 * the legacy serial Replayer path.
 */

#ifndef WLCRC_RUNNER_EXPERIMENT_HH
#define WLCRC_RUNNER_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coset/codec.hh"
#include "pcm/energy_model.hh"
#include "pcm/wear.hh"
#include "trace/replay.hh"
#include "trace/transaction.hh"
#include "tracefile/source.hh"
#include "wearlevel/config.hh"
#include "wearlevel/lifetime.hh"

namespace wlcrc::runner
{

struct ExperimentSpec;

/**
 * Builds the codec of a grid point from the point's energy model.
 * Set on a spec (or via a SchemeDef axis) when the codec is not one
 * of the factory's named schemes — e.g. the granularity sweeps of
 * Figures 1-3/5/11-13 instantiate NCosetsCodec / WlcCosetsCodec /
 * WlcrcCodec at parameters the name table doesn't cover. When set,
 * `ExperimentSpec::scheme` is a display label only.
 */
using CodecFactory =
    std::function<coset::CodecPtr(const pcm::EnergyModel &)>;

/**
 * Per-point custom replay hook, for experiments that consume the
 * transaction stream with something other than the stock
 * codec-through-device replay (e.g. Figure 4 counts compressibility,
 * the throughput bench times raw encode calls). The runner still
 * derives the stream from the spec (workload / random / source) and
 * hands it over in stream order. The returned ReplayResult is what
 * the stock reporters/merge path see — populate the fields that map
 * onto it (typically at least `writes`); metrics with no
 * ReplayResult field must be captured by the hook itself (each spec
 * owning its own output slot keeps the parallel hooks race-free).
 * Specs with a custom replay always execute as a single shard with
 * the spec's own seed.
 */
using CustomReplayFn = std::function<trace::ReplayResult(
    const ExperimentSpec &spec,
    const std::vector<trace::WriteTransaction> &txns)>;

/**
 * One point of the scheme axis: a display name plus, when the codec
 * is not factory-addressable, the factory function building it.
 */
struct SchemeDef
{
    std::string name;     //!< row label; factory name if no factory
    CodecFactory factory; //!< null = core::makeCodec(name, ...)
};

/** Device-side knobs shared by a group of experiments. */
struct DeviceConfig
{
    double s3 = 307.0;           //!< S3 SET energy override (pJ)
    double s4 = 547.0;           //!< S4 SET energy override (pJ)
    bool vnr = false;            //!< run Verify-n-Restore per write
    uint64_t wearEndurance = 0;  //!< per-cell endurance; 0 = no wear

    /** Short label for result rows, e.g. "s3=307,s4=547". */
    std::string label() const;
};

/** One grid point: what to replay, through what, and how. */
struct ExperimentSpec
{
    std::string scheme = "WLCRC-16"; //!< factory codec name
    /** Named benchmark workload; empty = random or shared source. */
    std::string workload;
    /** Use the uniform-random workload (Figures 1a/2). */
    bool random = false;
    /**
     * External transaction stream (a trace file or an in-memory
     * vector), shared read-only across specs and shards; each shard
     * opens its own streaming cursor over its address partition, so
     * an on-disk trace replays without ever being materialised.
     * Overrides workload/random when set.
     */
    std::shared_ptr<const tracefile::TransactionSource> source;
    uint64_t lines = 10000; //!< writes to synthesize (ignored w/
                            //!< source)
    uint64_t seed = 1;      //!< synthesis + device master seed
    unsigned shards = 1;    //!< parallel shards (fixed, not #threads)
    /**
     * How shards partition the address space. The default (modulo)
     * replays byte-identically to pre-partition specs and works for
     * any stream. Range partitioning slices the source's [min, max]
     * address span into contiguous per-shard intervals — on a
     * locality-sorted container each shard then prunes to its own
     * run of blocks — and requires a sourced spec (the bounds come
     * from the source). Changing the partition reassigns lines to
     * differently-seeded shard devices, so it is part of the
     * canonical spec (emitted only when range, keeping existing
     * hashes stable).
     */
    tracefile::Partition partition = tracefile::Partition::modulo;
    DeviceConfig device;
    /**
     * Wear-leveling scheme between replayer and device. The default
     * ("none") replays byte-identically to a spec without the field;
     * an active leveler needs a globally consistent line mapping, so
     * such specs always execute as a single shard.
     */
    wearlevel::LevelerConfig leveler;
    /** Per-cell endurance budgets + failure criteria (0 = off). */
    wearlevel::EnduranceConfig endurance;
    /**
     * Loop the stream until the device dies (or the endurance write
     * cap): the lifetime-to-failure experiment. Requires an active
     * endurance config; runs single-sharded like any leveled spec.
     */
    bool lifetime = false;
    /**
     * Keep the merged per-cell WearTracker on the result (for
     * wear-histogram export). In-process only: such specs are never
     * cached and never cross a process boundary, because neither
     * channel can carry the tracker. Not part of the canonical spec.
     */
    bool keepWearTracker = false;
    /** Non-factory codec for this point; scheme becomes a label. */
    CodecFactory codecFactory;
    /** Replaces the stock replay entirely (single-sharded). */
    CustomReplayFn customReplay;
    /**
     * Extra token folded into specHash(). A codecFactory is an
     * opaque closure the hash cannot see, so factory-built specs are
     * cacheable only when the owner salts them with a string that
     * pins the factory's identity and parameters (the benches use
     * their harness name; see docs/caching.md). Ignored — and
     * unnecessary — for factory-named schemes.
     */
    std::string cacheSalt;

    /** Workload name, "random", or the source's label ("trace"). */
    std::string sourceName() const;
    /** Human-readable point label for reports and logs. */
    std::string label() const;
};

/** Merged metrics of one completed grid point. */
struct ExperimentResult
{
    ExperimentSpec spec;
    trace::ReplayResult replay;    //!< merged across shards
    pcm::WearSummary wear;         //!< merged wear (if tracked)
    uint64_t projectedLifetime = 0;
    /** Lifetime / leveling outcome (meaningful when the spec has an
     *  active leveler or lifetime set). */
    wearlevel::LifetimeResult lifetime;
    /** Merged per-cell tracker; only set for keepWearTracker specs
     *  executed in-process. */
    std::shared_ptr<const pcm::WearTracker> wearTracker;
    /** SIMD kernel that encoded this point ("scalar"/"avx2"/"neon").
     *  Informational: results are bit-identical across kernels, so
     *  the kernel is recorded in reports but excluded from
     *  specHash(). Empty for pre-SIMD cached results. */
    std::string simdKernel;
    bool ok = false;
    std::string error;             //!< failure reason when !ok
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_EXPERIMENT_HH
