/**
 * @file
 * ExperimentRunner: executes a list/grid of ExperimentSpecs on a
 * thread pool, one task per (spec, shard). Results are merged in
 * fixed shard order, so the output of a run depends only on the
 * specs — never on the job count or on how the OS schedules the
 * workers. `--jobs 4` and `--jobs 1` produce identical rows.
 */

#ifndef WLCRC_RUNNER_RUNNER_HH
#define WLCRC_RUNNER_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "runner/experiment.hh"
#include "runner/grid.hh"

namespace wlcrc::runner
{

class ExecutionBackend;
class CacheStore;

/** Snapshot of a run's completion state, for progress reporting. */
struct RunProgress
{
    std::size_t tasksDone = 0;  //!< (spec, shard) tasks finished
    std::size_t tasksTotal = 0; //!< tasks in the whole run
    double elapsedSec = 0;      //!< wall time since run() started
    double etaSec = 0;          //!< remaining-time estimate

    double
    fraction() const
    {
        return tasksTotal
                   ? static_cast<double>(tasksDone) / tasksTotal
                   : 1.0;
    }
};

/**
 * Invoked after every completed shard task (and once with
 * tasksDone == 0 before the first). Calls are serialised by the
 * runner, but arrive from worker threads — keep the callback cheap
 * and never write to a run's own report stream (stderr is the
 * conventional sink, so stdout stays byte-comparable).
 */
using ProgressFn = std::function<void(const RunProgress &)>;

/**
 * Cache/replay accounting of one run (accumulated with += across
 * runs when several grids share one RunStats, as the benches do).
 * `hits + replayed == points`; a cacheable missed point that
 * completes ok also counts in `stored`.
 */
struct RunStats
{
    std::size_t points = 0;      //!< grid points requested
    std::size_t cacheHits = 0;   //!< served from the cache
    std::size_t replayed = 0;    //!< actually executed
    std::size_t stored = 0;      //!< fresh results written back
    std::size_t uncacheable = 0; //!< hook-bearing, never cached
    /** Entries that failed to persist (results are unaffected). */
    std::size_t storeFailures = 0;

    RunStats &
    operator+=(const RunStats &o)
    {
        points += o.points;
        cacheHits += o.cacheHits;
        replayed += o.replayed;
        stored += o.stored;
        uncacheable += o.uncacheable;
        storeFailures += o.storeFailures;
        return *this;
    }

    /** One-line summary, e.g. "12 points: 10 hits, 2 replayed". */
    std::string summary() const;
};

/** Execution knobs, orthogonal to what is being run. */
struct RunnerOptions
{
    unsigned jobs = 0; //!< worker threads; 0 = hardware concurrency
    ProgressFn progress; //!< optional completion/ETA callback
    /**
     * Where replay work executes (backend.hh); null = the stock
     * in-process ThreadBackend. Backends never change results,
     * only where they are computed.
     */
    std::shared_ptr<const ExecutionBackend> backend;
    /**
     * Result-cache directory (result_cache.hh); empty = caching
     * off. Cacheable points are looked up before execution and
     * stored after, so an unchanged sweep re-run replays nothing.
     */
    std::string cacheDir;
    /**
     * Result-cache byte store (result_cache.hh); wins over cacheDir
     * when both are set. This is how a worker process points its
     * cache at the head node's store instead of a local directory.
     */
    std::shared_ptr<CacheStore> cacheStore;
    /** When set, each run() accumulates its RunStats here (+=). */
    RunStats *stats = nullptr;
};

/**
 * Stock progress sink: a single self-overwriting stderr line
 * "label: 12/40 (30%) elapsed 1.2s eta 2.8s", newline-terminated
 * when the run completes. Used by every bench binary for the long
 * paper-fidelity sweeps (WLCRC_BENCH_PROGRESS=0 silences it).
 */
ProgressFn stderrProgress(std::string label);

/** Parallel executor for experiment grids. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {}) : opts_(opts)
    {}

    /**
     * Run every spec; one result per spec, in spec order. A spec
     * that fails (unknown scheme/workload, unreadable source)
     * yields a result with ok = false and the error message —
     * other grid points still run. With a cacheDir, cached points
     * are served without executing and fresh ok results are stored
     * back; the result vector is identical either way.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** Convenience: expand @p grid, then run it. */
    std::vector<ExperimentResult>
    run(const ExperimentGrid &grid) const
    {
        return run(grid.expand());
    }

  private:
    RunnerOptions opts_;
};

/**
 * Shard that line address @p addr belongs to in an @p shards -way
 * split. Partitioning by address (not by position in the stream)
 * keeps every line's full write history inside one shard, which
 * preserves priming and differential-write state.
 */
inline unsigned
shardOf(uint64_t addr, unsigned shards)
{
    return shards > 1 ? static_cast<unsigned>(addr % shards) : 0;
}

/**
 * Device seed of shard @p shard of a spec seeded with @p seed:
 * the spec seed itself for single-shard runs (bit-compatible with
 * the legacy serial path), childSeed() otherwise.
 */
inline uint64_t
shardSeed(uint64_t seed, unsigned shard, unsigned shards)
{
    return shards > 1 ? childSeed(seed, shard) : seed;
}

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_RUNNER_HH
