#include "thread_pool.hh"

namespace wlcrc::runner
{

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (!threads)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            workReady_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and no work left
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace wlcrc::runner
