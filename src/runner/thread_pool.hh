/**
 * @file
 * Fixed-size thread pool with a plain FIFO queue. Deliberately
 * simple (no work stealing, no futures): the runner's tasks are
 * coarse (one replay shard each), so a mutex-guarded queue is
 * nowhere near the bottleneck, and FIFO keeps scheduling easy to
 * reason about.
 */

#ifndef WLCRC_RUNNER_THREAD_POOL_HH
#define WLCRC_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wlcrc::runner
{

/**
 * Fixed pool of worker threads draining a FIFO task queue.
 * Tasks must not throw; wrap fallible work and capture errors into
 * the task's own result slot.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const { return workers_.size(); }

    /** 0-guarded hardware concurrency. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_THREAD_POOL_HH
