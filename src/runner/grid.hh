/**
 * @file
 * ExperimentGrid: the cartesian sweep builder behind the paper's
 * evaluation tables. Axes default to a single sensible value, so a
 * grid is declared by naming only the axes that actually vary:
 *
 *   auto specs = ExperimentGrid()
 *                    .schemes(core::figure8Schemes())
 *                    .workloads(allWorkloadNames())
 *                    .lines(3000)
 *                    .expand();
 *
 * Expansion order is deterministic and paper-shaped: workload-major
 * (table rows), then scheme (table columns), then line count, seed
 * and device config.
 */

#ifndef WLCRC_RUNNER_GRID_HH
#define WLCRC_RUNNER_GRID_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/** Cartesian-product builder of ExperimentSpecs. */
class ExperimentGrid
{
  public:
    ExperimentGrid &schemes(std::vector<std::string> v);
    /** Scheme axis with per-point codec factories (see SchemeDef). */
    ExperimentGrid &schemeDefs(std::vector<SchemeDef> v);
    ExperimentGrid &workloads(std::vector<std::string> v);
    /** Use the uniform-random workload as the (single) source. */
    ExperimentGrid &randomSource();
    /**
     * Trace-source axis: one spec row group per source, cartesian
     * with every other axis (mirrors workloads(), for streams that
     * come from files instead of profile names). Give each source a
     * distinct label() when the grid has more than one, or report
     * rows become indistinguishable (expand() throws on duplicates).
     */
    ExperimentGrid &sources(
        std::vector<
            std::shared_ptr<const tracefile::TransactionSource>>
            v);
    /** Single-source convenience: wrap one pre-gathered stream. */
    ExperimentGrid &transactions(
        std::shared_ptr<const std::vector<trace::WriteTransaction>>
            txns);
    ExperimentGrid &lineCounts(std::vector<uint64_t> v);
    ExperimentGrid &lines(uint64_t n);
    ExperimentGrid &seeds(std::vector<uint64_t> v);
    ExperimentGrid &seed(uint64_t s);
    ExperimentGrid &deviceConfigs(std::vector<DeviceConfig> v);
    /**
     * Wear-leveling axis: one spec per leveler per point. Defaults
     * to the single pass-through NullLeveler config, so grids that
     * never call this expand exactly as before.
     */
    ExperimentGrid &levelers(std::vector<wearlevel::LevelerConfig> v);
    /** Endurance-budget axis (defaults to the single "off" config). */
    ExperimentGrid &
    endurances(std::vector<wearlevel::EnduranceConfig> v);
    /** Stamp every spec as a lifetime-to-failure replay. */
    ExperimentGrid &lifetime(bool on = true);
    ExperimentGrid &shards(unsigned n);
    /** Shard address-partition flavour (default modulo). */
    ExperimentGrid &partition(tracefile::Partition p);
    /** Stamp every expanded spec with a custom replay hook. */
    ExperimentGrid &customReplay(CustomReplayFn fn);
    /**
     * Stamp every expanded spec with a cache salt — required for
     * result-caching grids whose schemes are factory closures the
     * spec hash cannot see (see ExperimentSpec::cacheSalt). The
     * scheme display name is appended per point, so two defs in one
     * grid never share a key.
     */
    ExperimentGrid &cacheSalt(std::string salt);

    /** Number of specs expand() will produce. */
    std::size_t size() const;

    /**
     * Materialise the grid as a flat spec list in deterministic
     * order. @throws std::invalid_argument if no transaction source
     * (workloads, random or transactions) was configured, if any
     * configured axis is empty, or if the scheme axis repeats a name
     * (rows would be indistinguishable in every report).
     */
    std::vector<ExperimentSpec> expand() const;

  private:
    std::vector<SchemeDef> schemes_ = {{"WLCRC-16", nullptr}};
    std::vector<std::string> workloads_;
    bool random_ = false;
    std::vector<std::shared_ptr<const tracefile::TransactionSource>>
        sources_;
    std::vector<uint64_t> lineCounts_ = {10000};
    std::vector<uint64_t> seeds_ = {1};
    std::vector<DeviceConfig> configs_ = {DeviceConfig{}};
    std::vector<wearlevel::LevelerConfig> levelers_ = {
        wearlevel::LevelerConfig{}};
    std::vector<wearlevel::EnduranceConfig> endurances_ = {
        wearlevel::EnduranceConfig{}};
    bool lifetime_ = false;
    unsigned shards_ = 1;
    tracefile::Partition partition_ = tracefile::Partition::modulo;
    CustomReplayFn customReplay_;
    std::string cacheSalt_;
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_GRID_HH
