#include "experiment.hh"

#include <sstream>

#include "tracefile/source.hh"

namespace wlcrc::runner
{

std::string
DeviceConfig::label() const
{
    std::ostringstream os;
    os << "s3=" << s3 << ",s4=" << s4;
    if (vnr)
        os << ",vnr";
    if (wearEndurance)
        os << ",wear=" << wearEndurance;
    return os.str();
}

std::string
ExperimentSpec::sourceName() const
{
    if (source)
        return source->label();
    if (random)
        return "random";
    return workload;
}

std::string
ExperimentSpec::label() const
{
    std::ostringstream os;
    os << scheme << '/' << sourceName() << "/lines=" << lines
       << "/seed=" << seed << "/shards=" << shards;
    if (leveler.active())
        os << "/leveler=" << wearlevel::formatLeveler(leveler);
    if (endurance.active())
        os << "/endurance="
           << wearlevel::formatEndurance(endurance);
    if (lifetime)
        os << "/lifetime";
    return os.str();
}

} // namespace wlcrc::runner
