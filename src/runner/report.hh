/**
 * @file
 * Result reporters for the experiment runner: one row/object per
 * grid point, to CSV (via common/csv, for spreadsheets and the
 * paper's tables) or JSON (for downstream tooling). Reporters are
 * deterministic formatters — rows come out in spec order with fixed
 * columns, so reports are byte-comparable across runs and job
 * counts.
 */

#ifndef WLCRC_RUNNER_REPORT_HH
#define WLCRC_RUNNER_REPORT_HH

#include <ostream>
#include <vector>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

struct JsonValue;

/**
 * Version stamped into every JSON result object
 * (`"report_version"`). Bump it whenever the meaning or encoding of
 * a result field changes: the result cache and the worker protocol
 * refuse objects from another version, so results produced by an
 * older binary are re-replayed instead of silently merged
 * (docs/caching.md).
 */
inline constexpr int kReportVersion = 1;

/** Streams a batch of experiment results in some format. */
class Reporter
{
  public:
    virtual ~Reporter() = default;

    virtual void
    write(std::ostream &os,
          const std::vector<ExperimentResult> &results) const = 0;
};

/**
 * CSV report: grid coordinates, then the paper's metrics. Failed
 * grid points appear with an "error" status column so a sweep's
 * output always has one row per requested point.
 */
class CsvReporter : public Reporter
{
  public:
    void write(std::ostream &os,
               const std::vector<ExperimentResult> &results)
        const override;
};

/** JSON report: an array of result objects, same fields as CSV. */
class JsonReporter : public Reporter
{
  public:
    void write(std::ostream &os,
               const std::vector<ExperimentResult> &results)
        const override;
};

/**
 * Stream one result as the JSON object the reporters, the worker
 * protocol and the result cache all share. Doubles are printed
 * shortest-round-trip, and the raw counters (writes,
 * compressed_writes, vnr_iterations) and all nine per-write stat
 * means are included, so readResultObject() reconstructs a result
 * whose CSV/JSON rows are byte-identical to the original's.
 */
void writeResultObject(std::ostream &os, const ExperimentResult &r);

/**
 * Rebuild an ExperimentResult from writeResultObject() output.
 * @p spec supplies the grid coordinates (the caller always knows
 * the spec it asked about — the object's own coordinate fields are
 * informational).
 * @throws std::runtime_error on missing fields, type mismatches, or
 *         a report_version other than kReportVersion.
 */
ExperimentResult readResultObject(const JsonValue &obj,
                                  ExperimentSpec spec);

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_REPORT_HH
