/**
 * @file
 * Result reporters for the experiment runner: one row/object per
 * grid point, to CSV (via common/csv, for spreadsheets and the
 * paper's tables) or JSON (for downstream tooling). Reporters are
 * deterministic formatters — rows come out in spec order with fixed
 * columns, so reports are byte-comparable across runs and job
 * counts.
 */

#ifndef WLCRC_RUNNER_REPORT_HH
#define WLCRC_RUNNER_REPORT_HH

#include <ostream>
#include <vector>

#include "runner/experiment.hh"

namespace wlcrc::runner
{

/** Streams a batch of experiment results in some format. */
class Reporter
{
  public:
    virtual ~Reporter() = default;

    virtual void
    write(std::ostream &os,
          const std::vector<ExperimentResult> &results) const = 0;
};

/**
 * CSV report: grid coordinates, then the paper's metrics. Failed
 * grid points appear with an "error" status column so a sweep's
 * output always has one row per requested point.
 */
class CsvReporter : public Reporter
{
  public:
    void write(std::ostream &os,
               const std::vector<ExperimentResult> &results)
        const override;
};

/** JSON report: an array of result objects, same fields as CSV. */
class JsonReporter : public Reporter
{
  public:
    void write(std::ostream &os,
               const std::vector<ExperimentResult> &results)
        const override;
};

} // namespace wlcrc::runner

#endif // WLCRC_RUNNER_REPORT_HH
