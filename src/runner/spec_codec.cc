#include "spec_codec.hh"

#include <charconv>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runner/report.hh"
#include "tracefile/source.hh"

namespace wlcrc::runner
{

namespace
{

/** Values are newline-terminated; a newline inside one would forge
 *  the next key. Nothing in the factory/workload name tables ever
 *  contains one, so this is a programming-error guard, not a
 *  quoting scheme. */
const std::string &
checkValue(const std::string &v, const char *what)
{
    if (v.find('\n') != std::string::npos)
        throw std::invalid_argument(
            std::string("spec ") + what +
            " must not contain a newline");
    return v;
}

uint64_t
fnv1a(const std::string &text, uint64_t hash = 14695981039346656037ULL)
{
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

uint64_t
parseU64(const std::string &v, const std::string &key)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end != v.c_str() + v.size() || v.empty())
        throw std::runtime_error("spec: bad integer for " + key +
                                 ": '" + v + "'");
    return x;
}

double
parseDouble(const std::string &v, const std::string &key)
{
    errno = 0;
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (errno != 0 || end != v.c_str() + v.size() || v.empty())
        throw std::runtime_error("spec: bad number for " + key +
                                 ": '" + v + "'");
    return x;
}

} // namespace

std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

std::string
canonicalSpec(const ExperimentSpec &spec)
{
    std::ostringstream os;
    os << specMagic << '\n';
    os << "scheme=" << checkValue(spec.scheme, "scheme") << '\n';
    if (spec.source) {
        const std::string path = spec.source->filePath();
        if (path.empty())
            os << "stream=memory\n";
        else
            os << "stream=trace:" << checkValue(path, "trace path")
               << '\n';
        // The source label is presentation-only and deliberately
        // NOT serialized: cache lookups and worker results both
        // carry the caller's live spec (label included), so
        // relabeling a trace must not invalidate its entries.
    } else if (spec.random) {
        os << "stream=random\n";
    } else {
        os << "stream=workload:"
           << checkValue(spec.workload, "workload") << '\n';
    }
    // `lines` only shapes synthesized streams; a sourced spec's
    // length is the file's, so it stays out of the canonical form
    // (and therefore out of the cache key) exactly as it stays out
    // of the reports.
    if (!spec.source)
        os << "lines=" << spec.lines << '\n';
    os << "seed=" << spec.seed << '\n';
    os << "shards=" << (spec.shards ? spec.shards : 1) << '\n';
    // Emitted only when non-default: range partitioning reassigns
    // lines to differently-seeded shard devices (a result change),
    // but every modulo spec's canonical text — and cache hash —
    // predates the knob and must stay byte-identical.
    if (spec.partition == tracefile::Partition::range)
        os << "partition=range\n";
    os << "s3=" << formatDouble(spec.device.s3) << '\n';
    os << "s4=" << formatDouble(spec.device.s4) << '\n';
    os << "vnr=" << (spec.device.vnr ? 1 : 0) << '\n';
    os << "wear=" << spec.device.wearEndurance << '\n';
    // Wear-leveling / lifetime keys are emitted only when active, so
    // every pre-existing spec's canonical text — and therefore its
    // cache hash — is unchanged by the subsystem's existence.
    if (spec.leveler.active())
        os << "leveler=" << wearlevel::formatLeveler(spec.leveler)
           << '\n';
    if (spec.endurance.active())
        os << "endurance="
           << wearlevel::formatEndurance(spec.endurance) << '\n';
    if (spec.lifetime)
        os << "lifetime=1\n";
    if (!spec.cacheSalt.empty())
        os << "salt=" << checkValue(spec.cacheSalt, "cache salt")
           << '\n';
    if (spec.codecFactory)
        os << "factory=1\n";
    if (spec.customReplay)
        os << "custom=1\n";
    return os.str();
}

ExperimentSpec
parseSpec(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != specMagic)
        throw std::runtime_error(
            "spec: missing magic line (expected '" +
            std::string(specMagic) + "')");

    ExperimentSpec spec;
    spec.workload.clear();
    std::string tracePath;
    std::string sourceLabel;
    std::set<std::string> seen;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw std::runtime_error("spec: malformed line '" +
                                     line + "'");
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        seen.insert(key);
        if (key == "scheme") {
            spec.scheme = value;
        } else if (key == "stream") {
            if (value == "random") {
                spec.random = true;
            } else if (value.rfind("workload:", 0) == 0) {
                spec.workload = value.substr(9);
            } else if (value.rfind("trace:", 0) == 0) {
                tracePath = value.substr(6);
            } else {
                // "memory" lands here too: an in-memory stream
                // cannot be reconstructed in another process.
                throw std::runtime_error(
                    "spec: unsupported stream '" + value + "'");
            }
        } else if (key == "source_label") {
            sourceLabel = value;
        } else if (key == "lines") {
            spec.lines = parseU64(value, key);
        } else if (key == "seed") {
            spec.seed = parseU64(value, key);
        } else if (key == "shards") {
            spec.shards =
                static_cast<unsigned>(parseU64(value, key));
        } else if (key == "partition") {
            spec.partition = tracefile::parsePartitionName(value);
        } else if (key == "s3") {
            spec.device.s3 = parseDouble(value, key);
        } else if (key == "s4") {
            spec.device.s4 = parseDouble(value, key);
        } else if (key == "vnr") {
            spec.device.vnr = parseU64(value, key) != 0;
        } else if (key == "wear") {
            spec.device.wearEndurance = parseU64(value, key);
        } else if (key == "leveler") {
            spec.leveler = wearlevel::parseLeveler(value);
        } else if (key == "endurance") {
            spec.endurance = wearlevel::parseEndurance(value);
        } else if (key == "lifetime") {
            spec.lifetime = parseU64(value, key) != 0;
        } else if (key == "salt") {
            spec.cacheSalt = value;
        } else if (key == "factory" || key == "custom") {
            throw std::runtime_error(
                "spec: '" + key +
                "' hooks cannot cross a process boundary");
        } else if (key == "digest") {
            // Hash-only annotation; harmless in a worker file.
        } else {
            throw std::runtime_error("spec: unknown key '" + key +
                                     "'");
        }
    }
    // Every field canonicalSpec() always emits must be present: a
    // truncated file has to fail loudly, not replay a half-default
    // spec that would then be cached under the real key.
    std::vector<std::string> required = {"scheme", "stream", "seed",
                                         "shards", "s3",   "s4",
                                         "vnr",    "wear"};
    if (seen.count("stream") && tracePath.empty())
        required.push_back("lines"); // synthesized streams only
    for (const auto &key : required) {
        if (!seen.count(key))
            throw std::runtime_error("spec: missing '" + key +
                                     "' line (truncated file?)");
    }
    if (!tracePath.empty()) {
        auto src = tracefile::openTraceSource(tracePath);
        if (!sourceLabel.empty())
            src->setLabel(sourceLabel);
        spec.source = std::move(src);
    }
    return spec;
}

bool
processSerializable(const ExperimentSpec &spec, std::string *why)
{
    const auto blocked = [&](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (spec.customReplay)
        return blocked("custom replay hook is a closure");
    if (spec.codecFactory)
        return blocked("codec factory is a closure");
    if (spec.source && spec.source->filePath().empty())
        return blocked("in-memory source has no reopenable path");
    if (spec.keepWearTracker)
        return blocked(
            "a worker result cannot carry the per-cell tracker");
    return true;
}

bool
cacheableSpec(const ExperimentSpec &spec)
{
    // A custom replay's real output flows through side channels the
    // cache cannot replay; a factory codec is invisible to the hash
    // unless the owner salts the spec.
    if (spec.customReplay)
        return false;
    if (spec.codecFactory && spec.cacheSalt.empty())
        return false;
    // A cache entry cannot carry the per-cell tracker the caller
    // asked to keep, so a hit would lose it.
    if (spec.keepWearTracker)
        return false;
    return true;
}

std::string
specKeyText(const ExperimentSpec &spec)
{
    std::ostringstream os;
    os << canonicalSpec(spec);
    if (spec.source)
        os << "digest=" << std::hex << spec.source->contentDigest()
           << std::dec << '\n';
    os << "report_version=" << kReportVersion << '\n';
    return os.str();
}

uint64_t
specHash(const ExperimentSpec &spec)
{
    return fnv1a(specKeyText(spec));
}

std::string
specHashHex(const ExperimentSpec &spec)
{
    const uint64_t h = specHash(spec);
    char buf[17];
    static const char *hex = "0123456789abcdef";
    for (int i = 0; i < 16; ++i)
        buf[i] = hex[(h >> (60 - 4 * i)) & 0xf];
    buf[16] = '\0';
    return buf;
}

} // namespace wlcrc::runner
