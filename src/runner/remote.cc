#include "remote.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/frame.hh"
#include "runner/json_mini.hh"
#include "runner/report.hh"
#include "runner/spec_codec.hh"
#include "tracefile/format.hh"

namespace wlcrc::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

bool
sendF(int fd, WorkFrame type, const void *payload = nullptr,
      std::size_t payloadBytes = 0)
{
    return net::sendFrame(fd, workMagic,
                          static_cast<uint8_t>(type), 0, payload,
                          payloadBytes);
}

net::RecvStatus
recvF(int fd, net::FrameHeader &h, std::vector<uint8_t> &payload)
{
    return net::recvFrame(fd, workMagic, maxWorkPayload, h, payload);
}

void
sendError(int fd, const char *name)
{
    sendF(fd, WorkFrame::Error, name, std::strlen(name));
}

/** Connect to @p host:@p port. @throws std::runtime_error. */
int
connectTo(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host \"" + host + "\"");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("cannot connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

/** u64 pointId prefix + text body (Work and Result payloads). */
std::vector<uint8_t>
idTextPayload(uint64_t id, const std::string &text)
{
    std::vector<uint8_t> p(8 + text.size());
    tracefile::putLe64(p.data(), id);
    std::memcpy(p.data() + 8, text.data(), text.size());
    return p;
}

} // namespace

std::pair<std::string, uint16_t>
parseHostPort(const std::string &text)
{
    std::string host = "127.0.0.1";
    std::string portText = text;
    if (const auto colon = text.rfind(':');
        colon != std::string::npos) {
        host = text.substr(0, colon);
        portText = text.substr(colon + 1);
    }
    unsigned long port = 0;
    std::size_t used = 0;
    try {
        port = std::stoul(portText, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (host.empty() || used != portText.size() || port == 0 ||
        port > 65535)
        throw std::invalid_argument("bad host:port \"" + text +
                                    "\"");
    return {host, static_cast<uint16_t>(port)};
}

// ---------------------------------------------------------------
// Head node
// ---------------------------------------------------------------

struct RemoteBackend::Impl
{
    explicit Impl(RemoteBackendOptions o) : opts(std::move(o)) {}

    RemoteBackendOptions opts;

    int listenFd = -1;
    uint16_t port = 0;
    std::thread acceptThread;

    std::mutex mutex;
    std::condition_variable cv;
    bool finFlag = false;

    /**
     * Serializes every taskDone invocation (connection threads and
     * run()'s inline path) and is never held together with `mutex`,
     * so a callback may block or call back into the backend (e.g.
     * errorCounts()) without stalling or deadlocking the queue.
     */
    std::mutex callbackMutex;
    /** Result callbacks copied out of the lock but not yet run. */
    unsigned callbacksInFlight = 0;

    /** One grid point of the active run. */
    struct Point
    {
        const ExperimentSpec *spec = nullptr;
        std::string text; //!< canonicalSpec(), crosses the wire
        enum class State
        {
            Pending,
            Issued,
            Done
        } state = State::Pending;
        Clock::time_point issuedAt{};
        uint64_t holder = 0; //!< conn id, meaningful while Issued
        ExperimentResult result;
    };

    /** Queue state of the run in flight; lives on run()'s stack. */
    struct Run
    {
        std::vector<Point> points;
        std::deque<std::size_t> pending;
        std::size_t done = 0;
        const std::function<void()> *taskDone = nullptr;
    };
    Run *active = nullptr;

    std::map<std::string, uint64_t> errors;

    struct Conn
    {
        /**
         * Closed only here, when the last reference drops. stop()
         * snapshots the shared_ptrs, so an fd it shuts down cannot
         * be concurrently closed and reused for something else.
         */
        ~Conn()
        {
            if (fd >= 0)
                ::close(fd);
        }

        int fd = -1;
        uint64_t id = 0;
        bool hello = false;
        std::set<std::size_t> held; //!< point ids issued here
    };
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> connThreads;
    uint64_t nextConnId = 0;

    std::vector<pid_t> spawned;
    bool stopped = false;

    void
    countLocked(const std::string &name)
    {
        ++errors[name];
    }

    void
    count(const std::string &name)
    {
        std::lock_guard lock(mutex);
        countLocked(name);
    }

    void
    start()
    {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            throw std::runtime_error("socket() failed");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts.port);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            ::close(listenFd);
            listenFd = -1;
            throw std::runtime_error(
                "cannot bind 127.0.0.1:" +
                std::to_string(opts.port) + ": " +
                std::strerror(errno));
        }
        socklen_t len = sizeof addr;
        ::getsockname(listenFd,
                      reinterpret_cast<sockaddr *>(&addr), &len);
        port = ntohs(addr.sin_port);
        if (::listen(listenFd, 128) != 0) {
            ::close(listenFd);
            listenFd = -1;
            throw std::runtime_error("listen() failed");
        }
        acceptThread = std::thread([this] { acceptLoop(); });
    }

    void
    acceptLoop()
    {
        for (;;) {
            const int cfd = ::accept(listenFd, nullptr, nullptr);
            if (cfd < 0) {
                if (errno == EINTR)
                    continue;
                break; // listener closed by stop()
            }
            const int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            std::lock_guard lock(mutex);
            if (finFlag) {
                ::close(cfd);
                continue;
            }
            auto conn = std::make_shared<Conn>();
            conn->fd = cfd;
            conn->id = nextConnId++;
            conns.push_back(conn);
            connThreads.emplace_back(
                [this, conn] { connectionLoop(conn); });
        }
    }

    /**
     * Put every Issued point older than the deadline back on the
     * queue. Called with the lock held, from Pulls that found the
     * queue empty and from run()'s periodic wait wake-ups.
     */
    void
    scanStragglersLocked()
    {
        if (!active)
            return;
        const auto now = Clock::now();
        const std::chrono::duration<double> deadline(
            opts.reissueSec);
        for (std::size_t i = 0; i < active->points.size(); ++i) {
            Point &p = active->points[i];
            if (p.state != Point::State::Issued ||
                now - p.issuedAt <= deadline)
                continue;
            p.state = Point::State::Pending;
            active->pending.push_back(i);
            countLocked("reissued");
            for (const auto &c : conns)
                if (c->id == p.holder)
                    c->held.erase(i);
        }
    }

    void
    handlePull(const std::shared_ptr<Conn> &c)
    {
        bool fin = false;
        std::vector<uint8_t> work;
        {
            std::lock_guard lock(mutex);
            fin = finFlag;
            if (!fin && active) {
                if (active->pending.empty())
                    scanStragglersLocked();
                while (!active->pending.empty()) {
                    const std::size_t idx =
                        active->pending.front();
                    active->pending.pop_front();
                    Point &p = active->points[idx];
                    // A queue entry can go stale: a reissued
                    // point's first result arrived and won while
                    // its requeued entry still sat here. Issuing
                    // it again would flip a Done point back to
                    // Issued and double-count its completion.
                    if (p.state != Point::State::Pending)
                        continue;
                    p.state = Point::State::Issued;
                    p.issuedAt = Clock::now();
                    p.holder = c->id;
                    c->held.insert(idx);
                    work = idTextPayload(idx, p.text);
                    break;
                }
            }
        }
        // Sends happen outside the lock: a worker that stopped
        // reading must block its own connection thread only, never
        // the whole head. A failed Work send leaves the point
        // Issued here; the disconnect path requeues it.
        if (fin)
            sendF(c->fd, WorkFrame::Fin);
        else if (!work.empty())
            sendF(c->fd, WorkFrame::Work, work.data(), work.size());
        else
            sendF(c->fd, WorkFrame::Retry);
    }

    /** @return false to drop the connection. */
    bool
    handleResult(const std::shared_ptr<Conn> &c,
                 const std::vector<uint8_t> &payload)
    {
        if (payload.size() < 8) {
            count("malformed-result");
            sendError(c->fd, "malformed-result");
            return false;
        }
        const uint64_t id = tracefile::getLe64(payload.data());
        const std::string json(payload.begin() + 8, payload.end());

        std::optional<JsonValue> doc;
        try {
            doc.emplace(parseJson(json));
        } catch (const std::exception &) {
        }

        bool malformed = false;
        bool completed = false;
        std::function<void()> done;
        {
            std::lock_guard lock(mutex);
            c->held.erase(static_cast<std::size_t>(id));
            if (!active || id >= active->points.size()) {
                // Straggler of a finished run racing Fin: harmless.
                countLocked("duplicate-result");
                return true;
            }
            Point &p =
                active->points[static_cast<std::size_t>(id)];
            if (p.state == Point::State::Done) {
                // The point was reissued and someone else won.
                // Results are deterministic, so dropping this copy
                // is safe.
                countLocked("duplicate-result");
                return true;
            }
            ExperimentResult res;
            malformed = !doc;
            if (doc) {
                try {
                    res = readResultObject(*doc, *p.spec);
                } catch (const std::exception &) {
                    malformed = true;
                }
            }
            if (malformed) {
                countLocked("malformed-result");
                if (p.state == Point::State::Issued) {
                    p.state = Point::State::Pending;
                    active->pending.push_back(
                        static_cast<std::size_t>(id));
                }
            } else {
                // A reissued point sits in the queue as a Pending
                // entry; its original worker's result winning here
                // must retire that entry, or handlePull would
                // issue the already-Done point again.
                if (p.state == Point::State::Pending) {
                    auto &q = active->pending;
                    q.erase(std::remove(
                                q.begin(), q.end(),
                                static_cast<std::size_t>(id)),
                            q.end());
                }
                // A well-formed ok=false is authoritative — the
                // replay itself failed, identical on any worker —
                // not a worker fault to retry around.
                if (!res.ok)
                    countLocked("worker-reported-error");
                p.result = std::move(res);
                p.state = Point::State::Done;
                ++active->done;
                completed = true;
                if (active->taskDone && *active->taskDone) {
                    done = *active->taskDone;
                    ++callbacksInFlight;
                }
            }
        }
        if (malformed) {
            sendError(c->fd, "malformed-result");
            return false;
        }
        // The progress callback runs outside the queue lock — it
        // may block or call back into the backend — and run()
        // waits for callbacksInFlight to drain, so a callback
        // never outlives the run() call that registered it.
        if (done) {
            {
                std::lock_guard cb(callbackMutex);
                done();
            }
            std::lock_guard lock(mutex);
            --callbacksInFlight;
        }
        if (completed)
            cv.notify_all();
        return true;
    }

    /** @return false to drop the connection. */
    bool
    handleCacheGet(const std::shared_ptr<Conn> &c,
                   const std::vector<uint8_t> &payload)
    {
        const std::string hash(payload.begin(), payload.end());
        try {
            checkCacheHash(hash);
        } catch (const std::exception &) {
            count("bad-cache-hash");
            sendError(c->fd, "bad-cache-hash");
            return false;
        }
        std::optional<std::string> entry;
        if (opts.serveCache) {
            try {
                entry = opts.serveCache->get(hash);
            } catch (const std::exception &) {
                entry.reset(); // dead store: serve a miss
            }
        }
        if (entry)
            return sendF(c->fd, WorkFrame::CacheHit, entry->data(),
                         entry->size());
        return sendF(c->fd, WorkFrame::CacheMiss);
    }

    /** @return false to drop the connection. */
    bool
    handleCachePut(const std::shared_ptr<Conn> &c,
                   const std::vector<uint8_t> &payload)
    {
        const std::string hash(
            payload.begin(),
            payload.begin() +
                std::min<std::size_t>(16, payload.size()));
        try {
            checkCacheHash(hash);
        } catch (const std::exception &) {
            count("bad-cache-hash");
            sendError(c->fd, "bad-cache-hash");
            return false;
        }
        const std::string entry(payload.begin() + 16,
                                payload.end());
        if (!opts.serveCache) {
            sendError(c->fd, "no-cache");
            return true;
        }
        try {
            opts.serveCache->put(hash, entry);
        } catch (const std::exception &) {
            // A full disk costs the entry, never the connection.
            count("cache-put-failed");
            sendError(c->fd, "cache-put-failed");
            return true;
        }
        return sendF(c->fd, WorkFrame::PutAck);
    }

    void
    connectionLoop(const std::shared_ptr<Conn> &c)
    {
        net::FrameHeader h;
        std::vector<uint8_t> payload;
        for (;;) {
            const net::RecvStatus st = recvF(c->fd, h, payload);
            if (st != net::RecvStatus::Ok) {
                if (st != net::RecvStatus::CleanEof) {
                    count(net::recvErrorName(st));
                    sendError(c->fd, net::recvErrorName(st));
                }
                break;
            }
            if (!c->hello &&
                h.type != static_cast<uint8_t>(WorkFrame::Hello)) {
                count("bad-hello");
                sendError(c->fd, "bad-hello");
                break;
            }
            bool keep = true;
            switch (static_cast<WorkFrame>(h.type)) {
            case WorkFrame::Hello:
                if (payload.size() != 4 ||
                    tracefile::getLe32(payload.data()) !=
                        workProtocolVersion) {
                    count("bad-hello");
                    sendError(c->fd, "bad-hello");
                    keep = false;
                    break;
                }
                c->hello = true;
                break;
            case WorkFrame::Pull:
                handlePull(c);
                break;
            case WorkFrame::Result:
                keep = handleResult(c, payload);
                break;
            case WorkFrame::CacheGet:
                keep = handleCacheGet(c, payload);
                break;
            case WorkFrame::CachePut:
                keep = handleCachePut(c, payload);
                break;
            default:
                count("bad-frame-type");
                sendError(c->fd, "bad-frame-type");
                keep = false;
                break;
            }
            if (!keep)
                break;
        }
        // This thread is the fd's only writer, so the shutdown
        // farewell is sent here (not from stop(), which would race
        // our own sends): best-effort — a worker that already hung
        // up sees plain EOF instead, which it equally accepts.
        bool fin = false;
        {
            std::lock_guard lock(mutex);
            fin = finFlag;
        }
        if (fin)
            sendF(c->fd, WorkFrame::Fin);
        dropConn(c);
    }

    /** Requeue a closing connection's issued points, close its fd. */
    void
    dropConn(const std::shared_ptr<Conn> &c)
    {
        {
            std::lock_guard lock(mutex);
            if (active) {
                for (const std::size_t id : c->held) {
                    Point &p = active->points[id];
                    if (p.state == Point::State::Issued &&
                        p.holder == c->id) {
                        p.state = Point::State::Pending;
                        active->pending.push_back(id);
                        countLocked("worker-died");
                    }
                }
            }
            c->held.clear();
            conns.erase(
                std::remove(conns.begin(), conns.end(), c),
                conns.end());
        }
        // No close here: ~Conn closes once the last shared_ptr
        // (possibly a snapshot inside stop()) lets go, so the fd
        // number cannot be recycled under a concurrent shutdown.
        ::shutdown(c->fd, SHUT_RDWR);
        cv.notify_all();
    }

    void
    spawnWorkers(unsigned jobs)
    {
        // The lock covers `spawned` against a stop() (destructor)
        // racing an in-flight run() from another thread.
        std::lock_guard lock(mutex);
        if (opts.workerBinary.empty() || !spawned.empty())
            return;
        unsigned n = opts.spawnWorkers;
        if (n == 0)
            n = jobs ? jobs : std::thread::hardware_concurrency();
        n = std::max(1u, n);
        const std::string connectArg =
            "127.0.0.1:" + std::to_string(port);
        for (unsigned i = 0; i < n; ++i) {
            const pid_t pid = ::fork();
            if (pid < 0)
                throw std::runtime_error("fork() failed: " +
                                         std::string(
                                             std::strerror(errno)));
            if (pid == 0) {
                // The head's own stdout is the byte-compared
                // report stream — a child must not share it even
                // though wlcrc_worker is stdout-silent by design.
                ::dup2(STDERR_FILENO, STDOUT_FILENO);
                ::execlp(opts.workerBinary.c_str(),
                         opts.workerBinary.c_str(), "--connect",
                         connectArg.c_str(),
                         static_cast<char *>(nullptr));
                ::_exit(127);
            }
            spawned.push_back(pid);
        }
    }

    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs, unsigned jobs,
        const std::function<void()> &taskDone)
    {
        std::vector<ExperimentResult> results(specs.size());

        Run r;
        std::vector<std::size_t> slot; // point k -> specs index
        std::vector<std::size_t> inline_;
        bool stoppedNow = false;
        {
            std::lock_guard lock(mutex);
            stoppedNow = finFlag;
        }
        for (std::size_t i = 0; i < specs.size(); ++i) {
            // After stop() no worker will ever answer; everything
            // degrades to the inline path rather than hanging.
            if (!stoppedNow && processSerializable(specs[i])) {
                Point p;
                p.spec = &specs[i];
                p.text = canonicalSpec(specs[i]);
                r.points.push_back(std::move(p));
                slot.push_back(i);
            } else {
                inline_.push_back(i);
            }
        }
        for (std::size_t k = 0; k < r.points.size(); ++k)
            r.pending.push_back(k);
        r.taskDone = &taskDone;

        if (!r.points.empty()) {
            {
                std::lock_guard lock(mutex);
                active = &r;
            }
            cv.notify_all();
            spawnWorkers(jobs);
        }

        // Hook-bearing / in-memory specs run here while the
        // cluster chews on the serializable ones.
        for (const std::size_t i : inline_) {
            results[i] = runSpecSerial(specs[i]);
            if (taskDone) {
                std::lock_guard cb(callbackMutex);
                taskDone();
            }
        }

        if (!r.points.empty()) {
            std::unique_lock lock(mutex);
            // Draining callbacksInFlight before returning keeps
            // the caller's taskDone (and whatever it captures)
            // alive for every invocation.
            while ((r.done < r.points.size() ||
                    callbacksInFlight > 0) &&
                   !finFlag) {
                scanStragglersLocked();
                cv.wait_for(lock,
                            std::chrono::milliseconds(100));
            }
            active = nullptr;
            for (std::size_t k = 0; k < r.points.size(); ++k) {
                Point &p = r.points[k];
                if (p.state == Point::State::Done) {
                    results[slot[k]] = std::move(p.result);
                } else {
                    ExperimentResult &res = results[slot[k]];
                    res.spec = *p.spec;
                    res.ok = false;
                    res.error = "remote backend stopped before "
                                "the point completed";
                }
            }
        }
        return results;
    }

    void
    stop()
    {
        std::vector<std::shared_ptr<Conn>> snapshot;
        std::vector<pid_t> pids;
        {
            std::lock_guard lock(mutex);
            if (stopped)
                return;
            stopped = true;
            finFlag = true;
            snapshot = conns; // shared_ptrs keep the fds alive
            pids.swap(spawned);
        }
        cv.notify_all();

        // Half-close only: the read shutdown breaks each
        // connection thread's recv, while the intact write side
        // lets that thread — the fd's sole writer — send the Fin
        // farewell itself on its way out. stop() never writes, so
        // frames cannot interleave, and the snapshot above pins the
        // fds so none can be closed and recycled underneath us.
        for (const auto &c : snapshot)
            ::shutdown(c->fd, SHUT_RD);
        if (listenFd >= 0)
            ::shutdown(listenFd, SHUT_RDWR);
        if (acceptThread.joinable())
            acceptThread.join();
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        for (;;) {
            std::vector<std::thread> threads;
            {
                std::lock_guard lock(mutex);
                // Connections that slipped in after the snapshot
                // above still need their recv broken; SHUT_RDWR
                // here also frees any thread stuck mid-send to a
                // peer that stopped reading.
                for (const auto &c : conns)
                    ::shutdown(c->fd, SHUT_RDWR);
                threads.swap(connThreads);
            }
            if (threads.empty())
                break;
            for (auto &t : threads)
                t.join();
        }

        // Spawned workers exit on Fin / the dropped connection; a
        // hung one (fault injection) gets a SIGKILL after a short
        // grace so stop() always returns.
        const auto deadline =
            Clock::now() + std::chrono::seconds(5);
        for (const pid_t pid : pids) {
            for (;;) {
                const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
                if (r == pid || (r < 0 && errno == ECHILD))
                    break;
                if (Clock::now() >= deadline) {
                    ::kill(pid, SIGKILL);
                    ::waitpid(pid, nullptr, 0);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        }
    }
};

RemoteBackend::RemoteBackend(RemoteBackendOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
    impl_->start();
}

RemoteBackend::~RemoteBackend()
{
    impl_->stop();
}

std::size_t
RemoteBackend::taskCount(
    const std::vector<ExperimentSpec> &specs) const
{
    return specs.size();
}

std::vector<ExperimentResult>
RemoteBackend::run(const std::vector<ExperimentSpec> &specs,
                   unsigned jobs,
                   const std::function<void()> &taskDone) const
{
    return impl_->run(specs, jobs, taskDone);
}

uint16_t
RemoteBackend::port() const
{
    return impl_->port;
}

void
RemoteBackend::stop()
{
    impl_->stop();
}

std::map<std::string, uint64_t>
RemoteBackend::errorCounts() const
{
    std::lock_guard lock(impl_->mutex);
    return impl_->errors;
}

// ---------------------------------------------------------------
// Worker
// ---------------------------------------------------------------

WorkerStats
runWorkerLoop(const WorkerOptions &opts)
{
    const int fd = connectTo(opts.host, opts.port);
    uint8_t hello[4];
    tracefile::putLe32(hello, workProtocolVersion);
    if (!sendF(fd, WorkFrame::Hello, hello, sizeof hello)) {
        ::close(fd);
        throw std::runtime_error("worker: head hung up on Hello");
    }

    WorkerStats stats;
    net::FrameHeader h;
    std::vector<uint8_t> payload;
    int works = 0;
    for (;;) {
        if (!sendF(fd, WorkFrame::Pull))
            break;
        const net::RecvStatus st = recvF(fd, h, payload);
        if (st != net::RecvStatus::Ok)
            break;
        const auto type = static_cast<WorkFrame>(h.type);
        if (type == WorkFrame::Fin || type == WorkFrame::Error)
            break;
        if (type == WorkFrame::Retry) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.pollMs));
            continue;
        }
        if (type != WorkFrame::Work || payload.size() < 8)
            break; // head speaking a different dialect: bail out
        ++works;
        if (opts.killAfter >= 0 && works >= opts.killAfter)
            ::raise(SIGKILL); // fault injection: die mid-point
        if (opts.hangAfter >= 0 && works >= opts.hangAfter)
            for (;;) // fault injection: hold the point forever
                std::this_thread::sleep_for(
                    std::chrono::hours(1));

        const uint64_t id = tracefile::getLe64(payload.data());
        const std::string text(payload.begin() + 8,
                               payload.end());
        ExperimentResult res;
        try {
            res = runSpecSerial(parseSpec(text));
        } catch (const std::exception &e) {
            res.ok = false;
            res.error = e.what();
        }
        std::ostringstream os;
        writeResultObject(os, res);
        const std::vector<uint8_t> reply =
            idTextPayload(id, os.str());
        ++stats.pointsRun;
        if (!res.ok)
            ++stats.failures;
        if (!sendF(fd, WorkFrame::Result, reply.data(),
                   reply.size()))
            break;
    }
    ::close(fd);
    return stats;
}

// ---------------------------------------------------------------
// Remote cache client
// ---------------------------------------------------------------

RemoteCacheStore::RemoteCacheStore(const std::string &host,
                                   uint16_t port)
{
    fd_ = connectTo(host, port);
    uint8_t hello[4];
    tracefile::putLe32(hello, workProtocolVersion);
    if (!sendF(fd_, WorkFrame::Hello, hello, sizeof hello)) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(
            "remote cache: head hung up on Hello");
    }
}

RemoteCacheStore::~RemoteCacheStore()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::optional<std::string>
RemoteCacheStore::get(const std::string &hashHex)
{
    checkCacheHash(hashHex);
    std::lock_guard lock(mutex_);
    if (!sendF(fd_, WorkFrame::CacheGet, hashHex.data(),
               hashHex.size()))
        throw std::runtime_error("remote cache: send failed");
    net::FrameHeader h;
    if (recvF(fd_, h, payload_) != net::RecvStatus::Ok)
        throw std::runtime_error("remote cache: recv failed");
    switch (static_cast<WorkFrame>(h.type)) {
    case WorkFrame::CacheHit:
        return std::string(payload_.begin(), payload_.end());
    case WorkFrame::CacheMiss:
        return std::nullopt;
    default:
        throw std::runtime_error(
            "remote cache: unexpected reply (" +
            std::string(payload_.begin(), payload_.end()) + ")");
    }
}

void
RemoteCacheStore::put(const std::string &hashHex,
                      const std::string &entry)
{
    checkCacheHash(hashHex);
    std::vector<uint8_t> payload(16 + entry.size());
    std::memcpy(payload.data(), hashHex.data(), 16);
    std::memcpy(payload.data() + 16, entry.data(), entry.size());
    std::lock_guard lock(mutex_);
    if (!sendF(fd_, WorkFrame::CachePut, payload.data(),
               payload.size()))
        throw std::runtime_error("remote cache: send failed");
    net::FrameHeader h;
    if (recvF(fd_, h, payload_) != net::RecvStatus::Ok)
        throw std::runtime_error("remote cache: recv failed");
    if (static_cast<WorkFrame>(h.type) != WorkFrame::PutAck)
        throw std::runtime_error(
            "remote cache: put rejected (" +
            std::string(payload_.begin(), payload_.end()) + ")");
}

} // namespace wlcrc::runner
