#include "json_mini.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace wlcrc::runner
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *word)
    {
        skipWs();
        const std::size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    value()
    {
        JsonValue v;
        switch (peek()) {
        case '{': {
            v.type = JsonValue::Type::Object;
            expect('{');
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                const std::string key = string();
                expect(':');
                v.object.emplace(key, value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        case '[': {
            v.type = JsonValue::Type::Array;
            expect('[');
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.array.push_back(value());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        case '"':
            v.type = JsonValue::Type::String;
            v.text = string();
            return v;
        default:
            if (consume("true")) {
                v.type = JsonValue::Type::Bool;
                v.boolean = true;
                return v;
            }
            if (consume("false")) {
                v.type = JsonValue::Type::Bool;
                return v;
            }
            if (consume("null"))
                return v;
            return number();
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("dangling escape");
            c = text_[pos_++];
            switch (c) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                break;
            }
            default: fail("unknown escape");
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    JsonValue
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                c == '-' || c == '+' || c == '.' || c == 'e' ||
                c == 'E')
                ++pos_;
            else
                break;
        }
        if (start == pos_)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.text = text_.substr(start, pos_ - start);
        // Validate eagerly so asDouble() can't fail later.
        errno = 0;
        char *end = nullptr;
        std::strtod(v.text.c_str(), &end);
        if (errno != 0 || end != v.text.c_str() + v.text.size())
            fail("malformed number '" + v.text + "'");
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (type != Type::Object)
        throw std::runtime_error("JSON: not an object");
    const auto it = object.find(key);
    if (it == object.end())
        throw std::runtime_error("JSON: missing key '" + key + "'");
    return it->second;
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::String)
        throw std::runtime_error("JSON: expected a string");
    return text;
}

bool
JsonValue::asBool() const
{
    if (type != Type::Bool)
        throw std::runtime_error("JSON: expected a boolean");
    return boolean;
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        throw std::runtime_error("JSON: expected a number");
    return std::strtod(text.c_str(), nullptr);
}

uint64_t
JsonValue::asU64() const
{
    if (type != Type::Number)
        throw std::runtime_error("JSON: expected a number");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        throw std::runtime_error("JSON: '" + text +
                                 "' is not an unsigned integer");
    return v;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace wlcrc::runner
