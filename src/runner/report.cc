#include "report.hh"

#include <algorithm>
#include <stdexcept>

#include "common/csv.hh"
#include "runner/json_mini.hh"
#include "runner/spec_codec.hh"

namespace wlcrc::runner
{

namespace
{

double
compressedPct(const trace::ReplayResult &r)
{
    return 100.0 * static_cast<double>(r.compressedWrites) /
           static_cast<double>(std::max<uint64_t>(1, r.writes));
}

double
vnrPerWrite(const trace::ReplayResult &r)
{
    return static_cast<double>(r.vnrIterations) /
           static_cast<double>(std::max<uint64_t>(1, r.writes));
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u00";
            const char *hex = "0123456789abcdef";
            out += hex[(c >> 4) & 0xf];
            out += hex[c & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

void
CsvReporter::write(std::ostream &os,
                   const std::vector<ExperimentResult> &results) const
{
    CsvTable table({"scheme", "source", "lines", "seed", "shards",
                    "status", "writes", "energy_pJ", "updated_cells",
                    "disturb_errors", "compressed_pct",
                    "vnr_per_write", "max_cell_wear",
                    "projected_lifetime", "leveler",
                    "writes_to_failure", "extra_writes"});
    for (const auto &r : results) {
        table.newRow();
        table.add(r.spec.scheme);
        table.add(r.spec.sourceName());
        // `lines` is ignored for pre-gathered streams; the real
        // count is the writes column.
        if (r.spec.source)
            table.add("-");
        else
            table.add(r.spec.lines);
        table.add(r.spec.seed);
        table.add(r.spec.shards);
        table.add(r.ok ? "ok" : "error");
        table.add(r.replay.writes);
        table.add(r.replay.energyPj.mean());
        table.add(r.replay.updatedCells.mean());
        table.add(r.replay.disturbErrors.mean());
        table.add(compressedPct(r.replay));
        table.add(vnrPerWrite(r.replay));
        if (r.spec.device.wearEndurance && r.ok) {
            table.add(r.wear.maxCellWrites);
            table.add(r.projectedLifetime);
        } else {
            table.add("-");
            table.add("-");
        }
        table.add(wearlevel::formatLeveler(r.spec.leveler));
        if (r.spec.lifetime && r.ok && r.lifetime.died)
            table.add(r.lifetime.writesToFailure);
        else
            table.add("-");
        if ((r.spec.lifetime || r.spec.leveler.active()) && r.ok)
            table.add(r.lifetime.extraWrites);
        else
            table.add("-");
    }
    table.write(os);
}

void
JsonReporter::write(std::ostream &os,
                    const std::vector<ExperimentResult> &results)
    const
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << "  ";
        writeResultObject(os, results[i]);
        os << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
writeResultObject(std::ostream &os, const ExperimentResult &r)
{
    os << "{\"report_version\":" << kReportVersion
       << ",\"scheme\":\"" << jsonEscape(r.spec.scheme)
       << "\",\"source\":\"" << jsonEscape(r.spec.sourceName())
       << "\"";
    if (!r.spec.source)
        os << ",\"lines\":" << r.spec.lines;
    os << ",\"seed\":" << r.spec.seed
       << ",\"shards\":" << r.spec.shards << ",\"ok\":"
       << (r.ok ? "true" : "false");
    if (!r.ok) {
        os << ",\"error\":\"" << jsonEscape(r.error) << "\"}";
        return;
    }
    if (!r.simdKernel.empty())
        os << ",\"simd\":\"" << jsonEscape(r.simdKernel) << "\"";
    const auto field = [&](const char *name, double v) {
        os << ",\"" << name << "\":" << formatDouble(v);
    };
    os << ",\"writes\":" << r.replay.writes
       << ",\"compressed_writes\":" << r.replay.compressedWrites
       << ",\"vnr_iterations\":" << r.replay.vnrIterations;
    field("energy_pj", r.replay.energyPj.mean());
    field("data_energy_pj", r.replay.dataEnergyPj.mean());
    field("aux_energy_pj", r.replay.auxEnergyPj.mean());
    field("updated_cells", r.replay.updatedCells.mean());
    field("data_updated", r.replay.dataUpdated.mean());
    field("aux_updated", r.replay.auxUpdated.mean());
    field("disturb_errors", r.replay.disturbErrors.mean());
    field("data_disturbed", r.replay.dataDisturbed.mean());
    field("aux_disturbed", r.replay.auxDisturbed.mean());
    field("compressed_pct", compressedPct(r.replay));
    field("vnr_per_write", vnrPerWrite(r.replay));
    if (r.spec.device.wearEndurance) {
        os << ",\"max_cell_wear\":" << r.wear.maxCellWrites
           << ",\"avg_cell_wear\":"
           << formatDouble(r.wear.avgCellWrites)
           << ",\"touched_cells\":" << r.wear.touchedCells
           << ",\"total_cell_writes\":" << r.wear.totalWrites
           << ",\"wear_cov\":" << formatDouble(r.wear.covCellWrites)
           << ",\"projected_lifetime\":" << r.projectedLifetime;
    }
    // Gated on the same spec fields readResultObject() checks, so a
    // stale cache entry written before these fields existed fails to
    // parse (= cache miss) instead of yielding a zeroed lifetime.
    if (r.spec.lifetime || r.spec.leveler.active()) {
        const auto &lt = r.lifetime;
        os << ",\"leveler\":\""
           << jsonEscape(wearlevel::formatLeveler(r.spec.leveler))
           << "\",\"lifetime_died\":" << (lt.died ? "true" : "false")
           << ",\"demand_writes\":" << lt.demandWrites
           << ",\"writes_to_failure\":" << lt.writesToFailure
           << ",\"extra_writes\":" << lt.extraWrites
           << ",\"remap_events\":" << lt.remapEvents
           << ",\"table_bytes\":" << lt.tableBytes
           << ",\"failed_line\":" << lt.failedLine
           << ",\"failed_cell\":" << lt.failedCell
           << ",\"dead_cells\":" << lt.deadCells
           << ",\"lifetime_max_cell_wear\":" << lt.maxCellWear
           << ",\"final_wear_cov\":"
           << formatDouble(lt.finalWearCov)
           << ",\"cov_sample_every\":" << lt.covSampleEvery
           << ",\"wear_cov_timeline\":[";
        for (std::size_t i = 0; i < lt.wearCovTimeline.size(); ++i)
            os << (i ? "," : "")
               << formatDouble(lt.wearCovTimeline[i]);
        os << "]";
    }
    os << "}";
}

ExperimentResult
readResultObject(const JsonValue &obj, ExperimentSpec spec)
{
    if (obj.at("report_version").asU64() !=
        static_cast<uint64_t>(kReportVersion)) {
        throw std::runtime_error(
            "result object has report_version " +
            obj.at("report_version").text + ", this binary writes " +
            std::to_string(kReportVersion));
    }
    ExperimentResult res;
    res.spec = std::move(spec);
    res.ok = obj.at("ok").asBool();
    if (!res.ok) {
        res.error = obj.at("error").asString();
        return res;
    }
    // Optional: absent in results cached before the SIMD kernels
    // existed (the kernel never changes the numbers, so old entries
    // stay valid).
    if (obj.has("simd"))
        res.simdKernel = obj.at("simd").asString();
    res.replay.writes = obj.at("writes").asU64();
    res.replay.compressedWrites =
        obj.at("compressed_writes").asU64();
    res.replay.vnrIterations = obj.at("vnr_iterations").asU64();
    // A one-sample stat reproduces the stored mean exactly — and
    // mean() is the only moment the reporters (and benches) read
    // from a merged result.
    const auto stat = [&](stats::RunningStat &s, const char *name) {
        s.add(obj.at(name).asDouble());
    };
    stat(res.replay.energyPj, "energy_pj");
    stat(res.replay.dataEnergyPj, "data_energy_pj");
    stat(res.replay.auxEnergyPj, "aux_energy_pj");
    stat(res.replay.updatedCells, "updated_cells");
    stat(res.replay.dataUpdated, "data_updated");
    stat(res.replay.auxUpdated, "aux_updated");
    stat(res.replay.disturbErrors, "disturb_errors");
    stat(res.replay.dataDisturbed, "data_disturbed");
    stat(res.replay.auxDisturbed, "aux_disturbed");
    if (res.spec.device.wearEndurance) {
        res.wear.maxCellWrites = obj.at("max_cell_wear").asU64();
        res.wear.avgCellWrites =
            obj.at("avg_cell_wear").asDouble();
        res.wear.touchedCells = obj.at("touched_cells").asU64();
        res.wear.totalWrites =
            obj.at("total_cell_writes").asU64();
        res.wear.covCellWrites = obj.at("wear_cov").asDouble();
        res.projectedLifetime =
            obj.at("projected_lifetime").asU64();
    }
    if (res.spec.lifetime || res.spec.leveler.active()) {
        auto &lt = res.lifetime;
        lt.died = obj.at("lifetime_died").asBool();
        lt.demandWrites = obj.at("demand_writes").asU64();
        lt.writesToFailure = obj.at("writes_to_failure").asU64();
        lt.extraWrites = obj.at("extra_writes").asU64();
        lt.remapEvents = obj.at("remap_events").asU64();
        lt.tableBytes = obj.at("table_bytes").asU64();
        lt.failedLine = obj.at("failed_line").asU64();
        lt.failedCell = static_cast<unsigned>(
            obj.at("failed_cell").asU64());
        lt.deadCells = obj.at("dead_cells").asU64();
        lt.maxCellWear =
            obj.at("lifetime_max_cell_wear").asU64();
        lt.finalWearCov = obj.at("final_wear_cov").asDouble();
        lt.covSampleEvery = obj.at("cov_sample_every").asU64();
        const JsonValue &tl = obj.at("wear_cov_timeline");
        if (tl.type != JsonValue::Type::Array)
            throw std::runtime_error(
                "wear_cov_timeline is not an array");
        lt.wearCovTimeline.clear();
        for (const auto &v : tl.array)
            lt.wearCovTimeline.push_back(v.asDouble());
    }
    return res;
}

} // namespace wlcrc::runner
