#include "report.hh"

#include <algorithm>

#include "common/csv.hh"

namespace wlcrc::runner
{

namespace
{

double
compressedPct(const trace::ReplayResult &r)
{
    return 100.0 * static_cast<double>(r.compressedWrites) /
           static_cast<double>(std::max<uint64_t>(1, r.writes));
}

double
vnrPerWrite(const trace::ReplayResult &r)
{
    return static_cast<double>(r.vnrIterations) /
           static_cast<double>(std::max<uint64_t>(1, r.writes));
}

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u00";
            const char *hex = "0123456789abcdef";
            out += hex[(c >> 4) & 0xf];
            out += hex[c & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

void
CsvReporter::write(std::ostream &os,
                   const std::vector<ExperimentResult> &results) const
{
    CsvTable table({"scheme", "source", "lines", "seed", "shards",
                    "status", "writes", "energy_pJ", "updated_cells",
                    "disturb_errors", "compressed_pct",
                    "vnr_per_write", "max_cell_wear",
                    "projected_lifetime"});
    for (const auto &r : results) {
        table.newRow();
        table.add(r.spec.scheme);
        table.add(r.spec.sourceName());
        // `lines` is ignored for pre-gathered streams; the real
        // count is the writes column.
        if (r.spec.source)
            table.add("-");
        else
            table.add(r.spec.lines);
        table.add(r.spec.seed);
        table.add(r.spec.shards);
        table.add(r.ok ? "ok" : "error");
        table.add(r.replay.writes);
        table.add(r.replay.energyPj.mean());
        table.add(r.replay.updatedCells.mean());
        table.add(r.replay.disturbErrors.mean());
        table.add(compressedPct(r.replay));
        table.add(vnrPerWrite(r.replay));
        if (r.spec.device.wearEndurance && r.ok) {
            table.add(r.wear.maxCellWrites);
            table.add(r.projectedLifetime);
        } else {
            table.add("-");
            table.add("-");
        }
    }
    table.write(os);
}

void
JsonReporter::write(std::ostream &os,
                    const std::vector<ExperimentResult> &results)
    const
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "  {\"scheme\":\"" << jsonEscape(r.spec.scheme)
           << "\",\"source\":\"" << jsonEscape(r.spec.sourceName())
           << "\"";
        if (!r.spec.source)
            os << ",\"lines\":" << r.spec.lines;
        os << ",\"seed\":" << r.spec.seed
           << ",\"shards\":" << r.spec.shards << ",\"ok\":"
           << (r.ok ? "true" : "false");
        if (!r.ok) {
            os << ",\"error\":\"" << jsonEscape(r.error) << "\"";
        } else {
            os << ",\"writes\":" << r.replay.writes
               << ",\"energy_pj\":" << r.replay.energyPj.mean()
               << ",\"updated_cells\":"
               << r.replay.updatedCells.mean()
               << ",\"disturb_errors\":"
               << r.replay.disturbErrors.mean()
               << ",\"compressed_pct\":" << compressedPct(r.replay)
               << ",\"vnr_per_write\":" << vnrPerWrite(r.replay);
            if (r.spec.device.wearEndurance) {
                os << ",\"max_cell_wear\":" << r.wear.maxCellWrites
                   << ",\"projected_lifetime\":"
                   << r.projectedLifetime;
            }
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace wlcrc::runner
