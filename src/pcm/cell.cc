#include "cell.hh"

namespace wlcrc::pcm
{

const char *
stateName(State s)
{
    static const char *names[numStates] = {"S1", "S2", "S3", "S4"};
    return names[stateIndex(s)];
}

} // namespace wlcrc::pcm
