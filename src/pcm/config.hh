/**
 * @file
 * System configuration constants from the paper's Table II.
 *
 * The trace-driven evaluation only depends on the data-path models
 * (energy, DER), but the memory-system substrate (memsys/) consumes
 * the topology and queueing parameters below so the end-to-end
 * pipeline mirrors the paper's setup: 8-core 4 GHz CMP, 2 MB private
 * L2 per core, 32 GB MLC PCM main memory, 2 channels x 2 DIMMs x 16
 * banks, 32-entry write queue with write pausing and an 80 % drain
 * threshold.
 */

#ifndef WLCRC_PCM_CONFIG_HH
#define WLCRC_PCM_CONFIG_HH

#include <cstdint>

namespace wlcrc::pcm
{

/** Table II memory-system parameters. */
struct SystemConfig
{
    // CPU side.
    unsigned cores = 8;
    double coreGhz = 4.0;

    // Private L2 per core.
    uint64_t l2Bytes = 2ull * 1024 * 1024;
    unsigned l2Ways = 8;
    unsigned l2LineBytes = 64;

    // PCM main memory topology.
    uint64_t pcmBytes = 32ull * 1024 * 1024 * 1024;
    unsigned channels = 2;
    unsigned dimmsPerChannel = 2;
    unsigned banksPerDimm = 16;

    // Controller queueing (write pausing scheduling).
    unsigned writeQueueEntries = 32;
    double writeDrainThreshold = 0.80;

    // Device timing in controller cycles (behavioural; PCM writes are
    // roughly an order of magnitude slower than reads).
    unsigned readLatencyCycles = 120;
    unsigned writeLatencyCycles = 1000;

    unsigned totalBanks() const
    {
        return channels * dimmsPerChannel * banksPerDimm;
    }
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_CONFIG_HH
