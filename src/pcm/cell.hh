/**
 * @file
 * MLC PCM cell states and associated per-state constants.
 *
 * Cells are 4-level: states S1..S4, ordered by the energy required to
 * program the cell into that state (paper Section III). S1 is reached
 * by a plain RESET; S2 by a SET pulse; S3/S4 by iterative partial SETs
 * under the 'single RESET + multiple SET' programming strategy.
 */

#ifndef WLCRC_PCM_CELL_HH
#define WLCRC_PCM_CELL_HH

#include <array>
#include <cstdint>

namespace wlcrc::pcm
{

/** The four programmable states of a 4-level MLC PCM cell. */
enum class State : uint8_t { S1 = 0, S2 = 1, S3 = 2, S4 = 3 };

/** Number of cell states. */
inline constexpr unsigned numStates = 4;

/** @return 0-based index of @p s. */
constexpr unsigned
stateIndex(State s)
{
    return static_cast<unsigned>(s);
}

/** @return state with 0-based index @p i (0..3). */
constexpr State
stateFromIndex(unsigned i)
{
    return static_cast<State>(i & 3);
}

/** Printable name ("S1".."S4"). */
const char *stateName(State s);

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_CELL_HH
