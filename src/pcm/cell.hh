/**
 * @file
 * MLC PCM cell states and associated per-state constants.
 *
 * Cells are 4-level: states S1..S4, ordered by the energy required to
 * program the cell into that state (paper Section III). S1 is reached
 * by a plain RESET; S2 by a SET pulse; S3/S4 by iterative partial SETs
 * under the 'single RESET + multiple SET' programming strategy.
 */

#ifndef WLCRC_PCM_CELL_HH
#define WLCRC_PCM_CELL_HH

#include <array>
#include <cstdint>

namespace wlcrc::pcm
{

/** The four programmable states of a 4-level MLC PCM cell. */
enum class State : uint8_t { S1 = 0, S2 = 1, S3 = 2, S4 = 3 };

/** Number of cell states. */
inline constexpr unsigned numStates = 4;

/** @return 0-based index of @p s. */
constexpr unsigned
stateIndex(State s)
{
    return static_cast<unsigned>(s);
}

/** @return state with 0-based index @p i (0..3). */
constexpr State
stateFromIndex(unsigned i)
{
    return static_cast<State>(i & 3);
}

/** Printable name ("S1".."S4"). */
const char *stateName(State s);

/**
 * Upper bound on stored cells per line across every codec layout:
 * 256 data cells plus up to two auxiliary cells per two-cell data
 * block (6cosets at the smallest legal granularity). Fixed-capacity
 * per-line buffers (TargetLine, CellMask) are sized by this so the
 * write hot path never touches the heap.
 */
inline constexpr unsigned maxLineCells = 768;

/**
 * Fixed-capacity per-cell flag set (one bit per cell of a stored
 * line). Replaces the std::vector<bool> masks of the write hot path:
 * resetting, testing and setting are all allocation-free.
 */
class CellMask
{
  public:
    CellMask() = default;

    /** Clear to @p n zero bits. */
    void
    reset(unsigned n)
    {
        size_ = n;
        bits_.fill(0);
    }

    unsigned size() const { return size_; }

    bool
    test(unsigned i) const
    {
        return (bits_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(unsigned i)
    {
        bits_[i >> 6] |= uint64_t{1} << (i & 63);
    }

    /** Raw 64-bit chunk @p w, for word-at-a-time scans. */
    uint64_t word(unsigned w) const { return bits_[w]; }
    unsigned words() const { return (size_ + 63) / 64; }

    /**
     * Writable word storage for bulk mask producers (the SIMD
     * differential scan). Writers must fill all words() words and
     * keep bits at or past size() zero.
     */
    uint64_t *rawWords() { return bits_.data(); }

  private:
    std::array<uint64_t, maxLineCells / 64> bits_{};
    uint32_t size_ = 0;
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_CELL_HH
