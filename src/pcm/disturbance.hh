/**
 * @file
 * Write-disturbance model for super-dense MLC PCM (paper Table II,
 * rates from Jiang et al., DSN'14, 20 nm node).
 *
 * Every programmed cell starts with a RESET pulse whose heat can
 * unintentionally lower the resistance of *idle* adjacent cells.
 * Disturbance is unidirectional: cells already at minimum resistance
 * (state S2 in the paper's energy ordering) are immune; idle cells in
 * S1 / S3 / S4 are disturbed with per-state probabilities (DER).
 */

#ifndef WLCRC_PCM_DISTURBANCE_HH
#define WLCRC_PCM_DISTURBANCE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "pcm/cell.hh"

namespace wlcrc::pcm
{

/** Per-state disturbance error rates when a neighbour is RESET. */
class DisturbanceModel
{
  public:
    /** Defaults from Table II (20 nm): S1 12.3%, S2 0%, S3 27.6%, S4 15.2%. */
    constexpr DisturbanceModel() = default;

    explicit constexpr
    DisturbanceModel(const std::array<double, numStates> &der)
        : der_(der)
    {}

    /** Disturbance probability of an idle cell in state @p s per
     *  adjacent RESET. */
    constexpr double der(State s) const { return der_[stateIndex(s)]; }

    /**
     * Sample the number of disturbed idle cells for one line write.
     *
     * @param cells    stored states after the write (@p n cells).
     * @param updated  updated.test(i) true iff cell i was programmed.
     * @param rng      randomness source.
     * @param disturbed  out (optional): per-cell disturbed flags.
     * @return number of disturbance errors in this write pass.
     *
     * Each programmed cell exposes its linear neighbours (i-1, i+1);
     * an idle neighbour flanked by two programmed cells gets two
     * independent chances to be disturbed, matching the physical
     * model of per-RESET heat pulses. Allocation-free: this is the
     * write hot path's sampler.
     */
    unsigned sample(const State *cells, std::size_t n,
                    const CellMask &updated, Rng &rng,
                    CellMask *disturbed = nullptr) const;

    /** Convenience adapter for vector-based callers (tests). */
    unsigned sample(const std::vector<State> &cells,
                    const std::vector<bool> &updated, Rng &rng,
                    std::vector<bool> *disturbed = nullptr) const;

    /**
     * Expected number of disturbance errors for one write pass
     * (deterministic; used by tests and fast analytic sweeps).
     */
    double expected(const State *cells, std::size_t n,
                    const CellMask &updated) const;

    /** Convenience adapter for vector-based callers (tests). */
    double expected(const std::vector<State> &cells,
                    const std::vector<bool> &updated) const;

  private:
    std::array<double, numStates> der_{0.123, 0.0, 0.276, 0.152};
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_DISTURBANCE_HH
