#include "write_unit.hh"

#include <cstddef>

#include <cassert>

namespace wlcrc::pcm
{

WriteStats &
WriteStats::operator+=(const WriteStats &o)
{
    dataEnergyPj += o.dataEnergyPj;
    auxEnergyPj += o.auxEnergyPj;
    dataUpdated += o.dataUpdated;
    auxUpdated += o.auxUpdated;
    dataDisturbed += o.dataDisturbed;
    auxDisturbed += o.auxDisturbed;
    vnrIterations += o.vnrIterations;
    return *this;
}

namespace
{

/** Program differing cells and charge energy/updates to data or aux. */
void
applyDifferential(std::vector<State> &stored, const TargetLine &target,
                  const EnergyModel &energy, WriteStats &st,
                  std::vector<bool> &updated)
{
    assert(stored.size() == target.cells.size());
    assert(stored.size() == target.auxMask.size());
    updated.assign(stored.size(), false);
    for (std::size_t i = 0; i < stored.size(); ++i) {
        if (stored[i] == target.cells[i])
            continue;
        updated[i] = true;
        const double e = energy.programEnergy(target.cells[i]);
        if (target.auxMask[i]) {
            st.auxEnergyPj += e;
            ++st.auxUpdated;
        } else {
            st.dataEnergyPj += e;
            ++st.dataUpdated;
        }
        stored[i] = target.cells[i];
    }
}

} // namespace

WriteStats
WriteUnit::program(std::vector<State> &stored, const TargetLine &target,
                   Rng &rng, bool verify_n_restore) const
{
    WriteStats st;
    std::vector<bool> updated;
    applyDifferential(stored, target, energy_, st, updated);

    // First-pass disturbance: this is what the paper's figures count.
    std::vector<bool> disturbed;
    unsigned errors = disturb_.sample(stored, updated, rng, &disturbed);
    for (std::size_t i = 0; i < disturbed.size(); ++i) {
        if (!disturbed[i])
            continue;
        if (target.auxMask[i])
            ++st.auxDisturbed;
        else
            ++st.dataDisturbed;
    }
    st.vnrIterations = errors ? 1 : 0;

    if (!verify_n_restore) {
        // Without VnR the disturbed (idle) cells keep their logical
        // value in this behavioural model: the subsequent
        // read-after-write detects and restores them out of band.
        return st;
    }

    // Iterative Verify-n-Restore: re-program disturbed cells; the
    // repair RESETs may disturb further idle cells. The paper reports
    // this converging in 3-5 iterations.
    while (errors) {
        ++st.vnrIterations;
        std::vector<bool> repairing = disturbed;
        errors = disturb_.sample(stored, repairing, rng, &disturbed);
    }
    return st;
}

WriteStats
WriteUnit::programExpected(std::vector<State> &stored,
                           const TargetLine &target) const
{
    WriteStats st;
    std::vector<bool> updated;
    applyDifferential(stored, target, energy_, st, updated);
    // Expectation is reported as a rounded count on the (unsplit)
    // data side; callers needing the exact value use the model
    // directly. Keep full precision available via the return value's
    // dataDisturbed only when integral; tests use
    // DisturbanceModel::expected() for exact checks.
    const double expected = disturb_.expected(stored, updated);
    st.dataDisturbed = static_cast<unsigned>(expected + 0.5);
    return st;
}

} // namespace wlcrc::pcm
