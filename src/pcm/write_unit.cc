#include "write_unit.hh"

#include <bit>
#include <cstddef>

#include <cassert>

#include "common/simd.hh"

namespace wlcrc::pcm
{

WriteStats &
WriteStats::operator+=(const WriteStats &o)
{
    dataEnergyPj += o.dataEnergyPj;
    auxEnergyPj += o.auxEnergyPj;
    dataUpdated += o.dataUpdated;
    auxUpdated += o.auxUpdated;
    dataDisturbed += o.dataDisturbed;
    auxDisturbed += o.auxDisturbed;
    vnrIterations += o.vnrIterations;
    return *this;
}

namespace
{

/** Program differing cells and charge energy/updates to data or aux. */
void
applyDifferential(std::vector<State> &stored, const TargetLine &target,
                  const EnergyModel &energy, WriteStats &st,
                  CellMask &updated)
{
    assert(stored.size() == target.size());
    const unsigned n = static_cast<unsigned>(stored.size());
    updated.reset(n);
    // Word-wise differential scan through the SIMD shim: one
    // cell-difference bitmask per line, then per-cell work only for
    // genuinely differing cells, in ascending cell order (the energy
    // accumulation order the golden results pin down).
    State *cur = stored.data();
    const State *tgt = target.states();
    simd::ops().byteDiffMask(reinterpret_cast<const uint8_t *>(cur),
                             reinterpret_cast<const uint8_t *>(tgt),
                             n, updated.rawWords());
    for (unsigned w = 0; w < updated.words(); ++w) {
        uint64_t diff = updated.word(w);
        while (diff) {
            const unsigned i =
                w * 64 +
                static_cast<unsigned>(std::countr_zero(diff));
            diff &= diff - 1;
            const double e = energy.programEnergy(tgt[i]);
            if (target.aux(i)) {
                st.auxEnergyPj += e;
                ++st.auxUpdated;
            } else {
                st.dataEnergyPj += e;
                ++st.dataUpdated;
            }
            cur[i] = tgt[i];
        }
    }
}

} // namespace

WriteStats
WriteUnit::program(std::vector<State> &stored, const TargetLine &target,
                   Rng &rng, bool verify_n_restore) const
{
    WriteStats st;
    CellMask updated;
    applyDifferential(stored, target, energy_, st, updated);

    // First-pass disturbance: this is what the paper's figures count.
    CellMask disturbed;
    unsigned errors = disturb_.sample(stored.data(), stored.size(),
                                      updated, rng, &disturbed);
    for (unsigned w = 0; w < disturbed.words(); ++w) {
        uint64_t bits = disturbed.word(w);
        while (bits) {
            const unsigned i =
                w * 64 +
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            if (target.aux(i))
                ++st.auxDisturbed;
            else
                ++st.dataDisturbed;
        }
    }
    st.vnrIterations = errors ? 1 : 0;

    if (!verify_n_restore) {
        // Without VnR the disturbed (idle) cells keep their logical
        // value in this behavioural model: the subsequent
        // read-after-write detects and restores them out of band.
        return st;
    }

    // Iterative Verify-n-Restore: re-program disturbed cells; the
    // repair RESETs may disturb further idle cells. The paper reports
    // this converging in 3-5 iterations.
    while (errors) {
        ++st.vnrIterations;
        const CellMask repairing = disturbed;
        errors = disturb_.sample(stored.data(), stored.size(),
                                 repairing, rng, &disturbed);
    }
    return st;
}

WriteStats
WriteUnit::programExpected(std::vector<State> &stored,
                           const TargetLine &target) const
{
    WriteStats st;
    CellMask updated;
    applyDifferential(stored, target, energy_, st, updated);
    // Expectation is reported as a rounded count on the (unsplit)
    // data side; callers needing the exact value use the model
    // directly. Keep full precision available via the return value's
    // dataDisturbed only when integral; tests use
    // DisturbanceModel::expected() for exact checks.
    const double expected =
        disturb_.expected(stored.data(), stored.size(), updated);
    st.dataDisturbed = static_cast<unsigned>(expected + 0.5);
    return st;
}

} // namespace wlcrc::pcm
