#include "disturbance.hh"

#include <cstddef>

#include <cassert>

namespace wlcrc::pcm
{

namespace
{

/** Number of programmed (RESETting) linear neighbours of cell i. */
unsigned
resetNeighbours(const std::vector<bool> &updated, std::size_t i)
{
    unsigned n = 0;
    if (i > 0 && updated[i - 1])
        ++n;
    if (i + 1 < updated.size() && updated[i + 1])
        ++n;
    return n;
}

} // namespace

unsigned
DisturbanceModel::sample(const std::vector<State> &cells,
                         const std::vector<bool> &updated, Rng &rng,
                         std::vector<bool> *disturbed) const
{
    assert(cells.size() == updated.size());
    if (disturbed)
        disturbed->assign(cells.size(), false);
    unsigned errors = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (updated[i])
            continue; // Programmed cells are rewritten, not disturbed.
        const double p = der_[stateIndex(cells[i])];
        if (p <= 0.0)
            continue;
        const unsigned exposures = resetNeighbours(updated, i);
        bool hit = false;
        for (unsigned e = 0; e < exposures; ++e)
            hit |= rng.chance(p);
        if (hit) {
            ++errors;
            if (disturbed)
                (*disturbed)[i] = true;
        }
    }
    return errors;
}

double
DisturbanceModel::expected(const std::vector<State> &cells,
                           const std::vector<bool> &updated) const
{
    assert(cells.size() == updated.size());
    double expected = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (updated[i])
            continue;
        const double p = der_[stateIndex(cells[i])];
        if (p <= 0.0)
            continue;
        const unsigned exposures = resetNeighbours(updated, i);
        // P(at least one of `exposures` independent pulses disturbs).
        double survive = 1.0;
        for (unsigned e = 0; e < exposures; ++e)
            survive *= 1.0 - p;
        expected += 1.0 - survive;
    }
    return expected;
}

} // namespace wlcrc::pcm
