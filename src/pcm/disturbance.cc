#include "disturbance.hh"

#include <bit>
#include <cstddef>

#include <cassert>

namespace wlcrc::pcm
{

namespace
{

/** Number of programmed (RESETting) linear neighbours of cell i. */
unsigned
resetNeighbours(const CellMask &updated, std::size_t i)
{
    unsigned n = 0;
    if (i > 0 && updated.test(static_cast<unsigned>(i - 1)))
        ++n;
    if (i + 1 < updated.size() &&
        updated.test(static_cast<unsigned>(i + 1)))
        ++n;
    return n;
}

CellMask
maskFromVector(const std::vector<bool> &v)
{
    assert(v.size() <= maxLineCells);
    CellMask m;
    m.reset(static_cast<unsigned>(v.size()));
    for (std::size_t i = 0; i < v.size(); ++i)
        if (v[i])
            m.set(static_cast<unsigned>(i));
    return m;
}

} // namespace

unsigned
DisturbanceModel::sample(const State *cells, std::size_t n,
                         const CellMask &updated, Rng &rng,
                         CellMask *disturbed) const
{
    assert(n == updated.size());
    if (disturbed)
        disturbed->reset(static_cast<unsigned>(n));
    unsigned errors = 0;
    // Only idle cells with at least one programmed neighbour can be
    // disturbed; compute that candidate set word-at-a-time instead
    // of scanning every cell. Candidates are visited in ascending
    // cell order, so the rng draw sequence matches a linear scan.
    const unsigned nw = updated.words();
    for (unsigned w = 0; w < nw; ++w) {
        const uint64_t u = updated.word(w);
        const uint64_t lo = w ? updated.word(w - 1) : 0;
        const uint64_t hi = w + 1 < nw ? updated.word(w + 1) : 0;
        uint64_t cand =
            ((u << 1) | (u >> 1) | (lo >> 63) | (hi << 63)) & ~u;
        if (static_cast<std::size_t>(w + 1) * 64 > n) {
            // Trim neighbour bits past the end of the line.
            cand &= ~uint64_t{0} >>
                    (static_cast<std::size_t>(w + 1) * 64 - n);
        }
        while (cand) {
            const unsigned i =
                w * 64 +
                static_cast<unsigned>(std::countr_zero(cand));
            cand &= cand - 1;
            const double p = der_[stateIndex(cells[i])];
            if (p <= 0.0)
                continue;
            const unsigned exposures = resetNeighbours(updated, i);
            bool hit = false;
            for (unsigned e = 0; e < exposures; ++e)
                hit |= rng.chance(p);
            if (hit) {
                ++errors;
                if (disturbed)
                    disturbed->set(i);
            }
        }
    }
    return errors;
}

unsigned
DisturbanceModel::sample(const std::vector<State> &cells,
                         const std::vector<bool> &updated, Rng &rng,
                         std::vector<bool> *disturbed) const
{
    assert(cells.size() == updated.size());
    const CellMask mask = maskFromVector(updated);
    CellMask out;
    const unsigned errors =
        sample(cells.data(), cells.size(), mask, rng,
               disturbed ? &out : nullptr);
    if (disturbed) {
        disturbed->assign(cells.size(), false);
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (out.test(static_cast<unsigned>(i)))
                (*disturbed)[i] = true;
    }
    return errors;
}

double
DisturbanceModel::expected(const State *cells, std::size_t n,
                           const CellMask &updated) const
{
    assert(n == updated.size());
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (updated.test(static_cast<unsigned>(i)))
            continue;
        const double p = der_[stateIndex(cells[i])];
        if (p <= 0.0)
            continue;
        const unsigned exposures = resetNeighbours(updated, i);
        // P(at least one of `exposures` independent pulses disturbs).
        double survive = 1.0;
        for (unsigned e = 0; e < exposures; ++e)
            survive *= 1.0 - p;
        expected += 1.0 - survive;
    }
    return expected;
}

double
DisturbanceModel::expected(const std::vector<State> &cells,
                           const std::vector<bool> &updated) const
{
    assert(cells.size() == updated.size());
    return expected(cells.data(), cells.size(),
                    maskFromVector(updated));
}

} // namespace wlcrc::pcm
