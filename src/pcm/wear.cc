#include "wear.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wlcrc::pcm
{

double
WearSummary::imbalance() const
{
    return avgCellWrites > 0
               ? static_cast<double>(maxCellWrites) / avgCellWrites
               : 0.0;
}

void
WearTracker::recordProgram(uint64_t addr, unsigned cell)
{
    assert(cell < cellsPerLine_);
    auto it = wear_.find(addr);
    if (it == wear_.end()) {
        it = wear_
                 .emplace(addr,
                          std::vector<uint32_t>(cellsPerLine_, 0))
                 .first;
    }
    ++it->second[cell];
}

void
WearTracker::recordLine(uint64_t addr,
                        const std::vector<bool> &updated)
{
    assert(updated.size() == cellsPerLine_);
    for (unsigned c = 0; c < cellsPerLine_; ++c) {
        if (updated[c])
            recordProgram(addr, c);
    }
}

void
WearTracker::recordLine(uint64_t addr, const CellMask &updated)
{
    assert(updated.size() == cellsPerLine_);
    for (unsigned c = 0; c < cellsPerLine_; ++c) {
        if (updated.test(c))
            recordProgram(addr, c);
    }
}

void
WearTracker::merge(const WearTracker &o)
{
    if (&o == this)
        throw std::invalid_argument(
            "WearTracker::merge: merging a tracker into itself "
            "would double every count");
    if (o.cellsPerLine_ != cellsPerLine_)
        throw std::invalid_argument(
            "WearTracker::merge: cellsPerLine mismatch (" +
            std::to_string(cellsPerLine_) + " vs " +
            std::to_string(o.cellsPerLine_) + ")");
    for (const auto &[addr, cells] : o.wear_) {
        auto it = wear_.find(addr);
        if (it == wear_.end()) {
            wear_.emplace(addr, cells);
            continue;
        }
        for (unsigned c = 0; c < cellsPerLine_; ++c)
            it->second[c] += cells[c];
    }
}

uint64_t
WearTracker::cellWrites(uint64_t addr, unsigned cell) const
{
    const auto it = wear_.find(addr);
    return it == wear_.end() ? 0 : it->second[cell];
}

const std::vector<uint32_t> *
WearTracker::lineWear(uint64_t addr) const
{
    const auto it = wear_.find(addr);
    return it == wear_.end() ? nullptr : &it->second;
}

WearSummary
WearTracker::summary() const
{
    WearSummary s;
    double sumSquares = 0.0;
    for (const auto &[addr, cells] : wear_) {
        for (const uint32_t w : cells) {
            if (!w)
                continue;
            ++s.touchedCells;
            s.totalWrites += w;
            sumSquares += static_cast<double>(w) * w;
            s.maxCellWrites =
                std::max<uint64_t>(s.maxCellWrites, w);
        }
    }
    if (s.touchedCells) {
        s.avgCellWrites = static_cast<double>(s.totalWrites) /
                          static_cast<double>(s.touchedCells);
        const double meanSq =
            sumSquares / static_cast<double>(s.touchedCells);
        const double variance =
            std::max(0.0, meanSq - s.avgCellWrites * s.avgCellWrites);
        s.covCellWrites = std::sqrt(variance) / s.avgCellWrites;
    }
    return s;
}

std::map<uint32_t, uint64_t>
WearTracker::histogram() const
{
    std::map<uint32_t, uint64_t> hist;
    for (const auto &[addr, cells] : wear_) {
        for (const uint32_t w : cells) {
            if (w)
                ++hist[w];
        }
    }
    return hist;
}

uint64_t
WearTracker::projectedLifetime(uint64_t cell_endurance,
                               uint64_t line_writes_so_far) const
{
    const WearSummary s = summary();
    if (!s.maxCellWrites || !line_writes_so_far)
        return 0;
    if (s.maxCellWrites >= cell_endurance)
        return 0;
    // The most-worn cell accrues maxCellWrites per
    // line_writes_so_far line writes; extrapolate to endurance.
    const double rate = static_cast<double>(s.maxCellWrites) /
                        static_cast<double>(line_writes_so_far);
    return static_cast<uint64_t>(
        static_cast<double>(cell_endurance - s.maxCellWrites) /
        rate);
}

} // namespace wlcrc::pcm
