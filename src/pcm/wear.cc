#include "wear.hh"

#include <cassert>

namespace wlcrc::pcm
{

double
WearSummary::imbalance() const
{
    return avgCellWrites > 0
               ? static_cast<double>(maxCellWrites) / avgCellWrites
               : 0.0;
}

void
WearTracker::recordProgram(uint64_t addr, unsigned cell)
{
    assert(cell < cellsPerLine_);
    auto it = wear_.find(addr);
    if (it == wear_.end()) {
        it = wear_
                 .emplace(addr,
                          std::vector<uint32_t>(cellsPerLine_, 0))
                 .first;
    }
    ++it->second[cell];
}

void
WearTracker::recordLine(uint64_t addr,
                        const std::vector<bool> &updated)
{
    assert(updated.size() == cellsPerLine_);
    for (unsigned c = 0; c < cellsPerLine_; ++c) {
        if (updated[c])
            recordProgram(addr, c);
    }
}

void
WearTracker::recordLine(uint64_t addr, const CellMask &updated)
{
    assert(updated.size() == cellsPerLine_);
    for (unsigned c = 0; c < cellsPerLine_; ++c) {
        if (updated.test(c))
            recordProgram(addr, c);
    }
}

void
WearTracker::merge(const WearTracker &o)
{
    assert(o.cellsPerLine_ == cellsPerLine_);
    for (const auto &[addr, cells] : o.wear_) {
        auto it = wear_.find(addr);
        if (it == wear_.end()) {
            wear_.emplace(addr, cells);
            continue;
        }
        for (unsigned c = 0; c < cellsPerLine_; ++c)
            it->second[c] += cells[c];
    }
}

uint64_t
WearTracker::cellWrites(uint64_t addr, unsigned cell) const
{
    const auto it = wear_.find(addr);
    return it == wear_.end() ? 0 : it->second[cell];
}

WearSummary
WearTracker::summary() const
{
    WearSummary s;
    for (const auto &[addr, cells] : wear_) {
        for (const uint32_t w : cells) {
            if (!w)
                continue;
            ++s.touchedCells;
            s.totalWrites += w;
            s.maxCellWrites =
                std::max<uint64_t>(s.maxCellWrites, w);
        }
    }
    if (s.touchedCells) {
        s.avgCellWrites = static_cast<double>(s.totalWrites) /
                          static_cast<double>(s.touchedCells);
    }
    return s;
}

uint64_t
WearTracker::projectedLifetime(uint64_t cell_endurance,
                               uint64_t line_writes_so_far) const
{
    const WearSummary s = summary();
    if (!s.maxCellWrites || !line_writes_so_far)
        return 0;
    if (s.maxCellWrites >= cell_endurance)
        return 0;
    // The most-worn cell accrues maxCellWrites per
    // line_writes_so_far line writes; extrapolate to endurance.
    const double rate = static_cast<double>(s.maxCellWrites) /
                        static_cast<double>(line_writes_so_far);
    return static_cast<uint64_t>(
        static_cast<double>(cell_endurance - s.maxCellWrites) /
        rate);
}

} // namespace wlcrc::pcm
