/**
 * @file
 * Behavioural PCM device: a sparse store of per-line cell states,
 * organised by bank, that applies codec-produced target lines through
 * the WriteUnit and accumulates lifetime statistics.
 */

#ifndef WLCRC_PCM_DEVICE_HH
#define WLCRC_PCM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "pcm/cell.hh"
#include "pcm/wear.hh"
#include "pcm/write_unit.hh"

namespace wlcrc::pcm
{

/**
 * Sparse PCM cell array. Lines are allocated on first touch with all
 * cells in S1 (the post-RESET state of a fresh device).
 *
 * The device does not know about encodings; it stores raw cell states
 * of `cellsPerLine` cells per line (data + dedicated aux cells, as
 * required by the attached codec) and applies differential writes.
 */
class Device
{
  public:
    /**
     * @param cells_per_line  total cells per stored line.
     * @param unit            energy/disturbance write unit.
     * @param seed            seed for disturbance sampling.
     */
    Device(unsigned cells_per_line, const WriteUnit &unit,
           uint64_t seed = 1);

    /** @return mutable stored states of line @p addr (line-aligned
     *  address, i.e. byte address >> 6). */
    std::vector<State> &line(uint64_t addr);

    /** @return the stored line, or nullptr if never written — one
     *  hash lookup where hasLine() + line() would take two. */
    std::vector<State> *tryLine(uint64_t addr);

    /** @return true if the line has been written before. */
    bool hasLine(uint64_t addr) const;

    /**
     * Apply @p target to line @p addr through differential write.
     * @return per-write statistics.
     */
    WriteStats write(uint64_t addr, const TargetLine &target,
                     bool verify_n_restore = false);

    /**
     * As write(), but @p stored is the reference line(addr) already
     * returned for this address — skips the per-write hash lookup
     * (the replay hot path holds the line across prime + encode +
     * program).
     */
    WriteStats writeLine(uint64_t addr, std::vector<State> &stored,
                         const TargetLine &target,
                         bool verify_n_restore = false);

    /** Lifetime totals across all writes. */
    const WriteStats &totals() const { return totals_; }
    uint64_t writeCount() const { return writes_; }
    unsigned cellsPerLine() const { return cellsPerLine_; }

    /** Reset lifetime statistics (stored contents are kept). */
    void resetStats();

    /**
     * Attach a wear tracker; every subsequent write records its
     * per-cell update mask. Pass nullptr to detach. The tracker must
     * outlive the device and have matching cellsPerLine.
     */
    void attachWearTracker(WearTracker *tracker);

  private:
    unsigned cellsPerLine_;
    WriteUnit unit_;
    Rng rng_;
    std::unordered_map<uint64_t, std::vector<State>> lines_;
    WearTracker *wear_ = nullptr;
    WriteStats totals_;
    uint64_t writes_ = 0;
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_DEVICE_HH
