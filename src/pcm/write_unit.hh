/**
 * @file
 * Differential-write application and per-write bookkeeping.
 *
 * A codec produces a TargetLine: the desired post-write state of every
 * cell of a stored line (data cells plus any dedicated auxiliary
 * cells) together with a mask tagging which cells belong to the
 * auxiliary encoding. The WriteUnit applies the target to the stored
 * states using differential write, and reports energy, updated cells
 * and write-disturbance errors split into data/aux components — the
 * three metrics evaluated throughout the paper.
 */

#ifndef WLCRC_PCM_WRITE_UNIT_HH
#define WLCRC_PCM_WRITE_UNIT_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/rng.hh"
#include "pcm/cell.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"

namespace wlcrc::pcm
{

/**
 * Desired post-write cell states plus the aux-region description.
 *
 * Storage is fixed-capacity and inline (maxLineCells), so building a
 * target allocates nothing — the encode hot path reuses one instance
 * per replayer. The aux region is described two ways, matching how
 * codecs lay lines out:
 *  - auxStart(): every cell at or past this boundary is auxiliary
 *    (the dedicated trailing aux cells of FNW/FlipMin/nCosets/
 *    restricted codecs and the per-line flag cell);
 *  - markAux(): individual cells inside the data region that carry
 *    auxiliary bits (the WLC-reclaimed selector cells of the
 *    WLC/WLCRC/COC formats).
 */
class TargetLine
{
  public:
    static constexpr unsigned maxCells = maxLineCells;

    TargetLine() = default;
    explicit TargetLine(unsigned n_cells) { reset(n_cells); }

    /** Resize to @p n cells, all S1, with an empty aux region. */
    void
    reset(unsigned n)
    {
        size_ = n;
        auxStart_ = n;
        std::fill_n(cells_.data(), n, State::S1);
        std::fill_n(auxBits_.data(), (n + 63) / 64, uint64_t{0});
    }

    unsigned size() const { return size_; }

    State operator[](unsigned i) const { return cells_[i]; }
    State &operator[](unsigned i) { return cells_[i]; }

    /** First cell of the trailing dedicated-aux region. */
    unsigned auxStart() const { return auxStart_; }
    void setAuxStart(unsigned c) { auxStart_ = c; }

    /** Tag an embedded aux cell inside the data region. */
    void
    markAux(unsigned i)
    {
        auxBits_[i >> 6] |= uint64_t{1} << (i & 63);
    }

    /** True iff cell @p i carries auxiliary encoding bits. */
    bool
    aux(unsigned i) const
    {
        return i >= auxStart_ ||
               ((auxBits_[i >> 6] >> (i & 63)) & 1);
    }

    const State *states() const { return cells_.data(); }
    /** Writable cell storage (SIMD symbol-mapping kernels). */
    State *states() { return cells_.data(); }

    /** Copy out the states (tests and cold paths). */
    std::vector<State>
    toVector() const
    {
        return {cells_.data(), cells_.data() + size_};
    }

    /** Set the first @p n cells (tests and cold paths). */
    void
    assign(std::initializer_list<State> states)
    {
        unsigned i = 0;
        for (const State s : states)
            cells_[i++] = s;
    }

  private:
    std::array<State, maxCells> cells_{};
    std::array<uint64_t, maxCells / 64> auxBits_{};
    uint32_t size_ = 0;
    uint32_t auxStart_ = 0;
};

/** Metrics of one line write (paper Figures 8-13 report these). */
struct WriteStats
{
    double dataEnergyPj = 0.0;   //!< energy spent on data cells
    double auxEnergyPj = 0.0;    //!< energy spent on aux cells
    unsigned dataUpdated = 0;    //!< data cells programmed
    unsigned auxUpdated = 0;     //!< aux cells programmed
    unsigned dataDisturbed = 0;  //!< disturbance errors in data cells
    unsigned auxDisturbed = 0;   //!< disturbance errors in aux cells
    unsigned vnrIterations = 0;  //!< Verify-n-Restore passes needed

    double totalEnergyPj() const { return dataEnergyPj + auxEnergyPj; }
    unsigned totalUpdated() const { return dataUpdated + auxUpdated; }
    unsigned
    totalDisturbed() const
    {
        return dataDisturbed + auxDisturbed;
    }

    WriteStats &operator+=(const WriteStats &o);
};

/**
 * Applies differential writes and optionally the iterative
 * Verify-n-Restore (VnR) disturbance-repair loop.
 */
class WriteUnit
{
  public:
    WriteUnit(const EnergyModel &energy, const DisturbanceModel &disturb)
        : energy_(energy), disturb_(disturb)
    {}

    /**
     * Program @p stored toward @p target with differential write.
     *
     * Only cells whose stored state differs are programmed. The
     * first-pass disturbance errors are sampled and reported in the
     * stats (this is the quantity Figures 10/13 plot); when
     * @p verify_n_restore is set, disturbed cells are then repaired
     * iteratively until a pass completes without new disturbances,
     * with repair energy *not* added to the reported write energy
     * (the paper reports raw write energy and treats VnR as a
     * correction mechanism).
     *
     * @param stored  current cell states; mutated to the final state.
     * @param target  desired states + aux mask (sizes must match).
     * @param rng     randomness for disturbance sampling.
     * @param verify_n_restore  run the VnR repair loop.
     */
    WriteStats program(std::vector<State> &stored,
                       const TargetLine &target, Rng &rng,
                       bool verify_n_restore = false) const;

    /**
     * Deterministic variant: disturbance errors are accumulated as
     * expectations (fractional), everything else identical. Used by
     * fast analytic sweeps and property tests.
     */
    WriteStats programExpected(std::vector<State> &stored,
                               const TargetLine &target) const;

    const EnergyModel &energyModel() const { return energy_; }
    const DisturbanceModel &disturbanceModel() const { return disturb_; }

  private:
    EnergyModel energy_;
    DisturbanceModel disturb_;
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_WRITE_UNIT_HH
