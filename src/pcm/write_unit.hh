/**
 * @file
 * Differential-write application and per-write bookkeeping.
 *
 * A codec produces a TargetLine: the desired post-write state of every
 * cell of a stored line (data cells plus any dedicated auxiliary
 * cells) together with a mask tagging which cells belong to the
 * auxiliary encoding. The WriteUnit applies the target to the stored
 * states using differential write, and reports energy, updated cells
 * and write-disturbance errors split into data/aux components — the
 * three metrics evaluated throughout the paper.
 */

#ifndef WLCRC_PCM_WRITE_UNIT_HH
#define WLCRC_PCM_WRITE_UNIT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "pcm/cell.hh"
#include "pcm/disturbance.hh"
#include "pcm/energy_model.hh"

namespace wlcrc::pcm
{

/** Desired post-write cell states plus an aux-region mask. */
struct TargetLine
{
    /** Target state for each cell (data region first, then aux). */
    std::vector<State> cells;
    /** auxMask[i] true iff cell i carries auxiliary encoding bits. */
    std::vector<bool> auxMask;

    TargetLine() = default;
    explicit TargetLine(std::size_t n_cells)
        : cells(n_cells, State::S1), auxMask(n_cells, false)
    {}
};

/** Metrics of one line write (paper Figures 8-13 report these). */
struct WriteStats
{
    double dataEnergyPj = 0.0;   //!< energy spent on data cells
    double auxEnergyPj = 0.0;    //!< energy spent on aux cells
    unsigned dataUpdated = 0;    //!< data cells programmed
    unsigned auxUpdated = 0;     //!< aux cells programmed
    unsigned dataDisturbed = 0;  //!< disturbance errors in data cells
    unsigned auxDisturbed = 0;   //!< disturbance errors in aux cells
    unsigned vnrIterations = 0;  //!< Verify-n-Restore passes needed

    double totalEnergyPj() const { return dataEnergyPj + auxEnergyPj; }
    unsigned totalUpdated() const { return dataUpdated + auxUpdated; }
    unsigned
    totalDisturbed() const
    {
        return dataDisturbed + auxDisturbed;
    }

    WriteStats &operator+=(const WriteStats &o);
};

/**
 * Applies differential writes and optionally the iterative
 * Verify-n-Restore (VnR) disturbance-repair loop.
 */
class WriteUnit
{
  public:
    WriteUnit(const EnergyModel &energy, const DisturbanceModel &disturb)
        : energy_(energy), disturb_(disturb)
    {}

    /**
     * Program @p stored toward @p target with differential write.
     *
     * Only cells whose stored state differs are programmed. The
     * first-pass disturbance errors are sampled and reported in the
     * stats (this is the quantity Figures 10/13 plot); when
     * @p verify_n_restore is set, disturbed cells are then repaired
     * iteratively until a pass completes without new disturbances,
     * with repair energy *not* added to the reported write energy
     * (the paper reports raw write energy and treats VnR as a
     * correction mechanism).
     *
     * @param stored  current cell states; mutated to the final state.
     * @param target  desired states + aux mask (sizes must match).
     * @param rng     randomness for disturbance sampling.
     * @param verify_n_restore  run the VnR repair loop.
     */
    WriteStats program(std::vector<State> &stored,
                       const TargetLine &target, Rng &rng,
                       bool verify_n_restore = false) const;

    /**
     * Deterministic variant: disturbance errors are accumulated as
     * expectations (fractional), everything else identical. Used by
     * fast analytic sweeps and property tests.
     */
    WriteStats programExpected(std::vector<State> &stored,
                               const TargetLine &target) const;

    const EnergyModel &energyModel() const { return energy_; }
    const DisturbanceModel &disturbanceModel() const { return disturb_; }

  private:
    EnergyModel energy_;
    DisturbanceModel disturb_;
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_WRITE_UNIT_HH
