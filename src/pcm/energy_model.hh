/**
 * @file
 * Write-energy model for 4-level MLC PCM (paper Table II).
 *
 * Under differential write, a cell is programmed only when its target
 * state differs from its stored state. Programming always begins with
 * a RESET pulse (36 pJ) and, depending on the target state, continues
 * with SET pulses: S1 +0 pJ, S2 +20 pJ, S3 +307 pJ, S4 +547 pJ
 * ('single RESET, multiple SETs' strategy). The intermediate-state
 * energies are adjustable to support the paper's Figure 14
 * sensitivity study.
 */

#ifndef WLCRC_PCM_ENERGY_MODEL_HH
#define WLCRC_PCM_ENERGY_MODEL_HH

#include <array>

#include "pcm/cell.hh"

namespace wlcrc::pcm
{

/** Per-state programming energies, in picojoules. */
class EnergyModel
{
  public:
    /** Construct with the paper's default Table II energies. */
    constexpr EnergyModel() = default;

    /**
     * Construct with custom energies.
     *
     * @param reset_pj  RESET pulse energy (paid by any programming).
     * @param set_pj    per-target-state SET energy (S1..S4).
     */
    constexpr EnergyModel(double reset_pj,
                          const std::array<double, numStates> &set_pj)
        : resetPj_(reset_pj), setPj_(set_pj)
    {}

    /** Energy to program an (already differing) cell into @p target. */
    constexpr double
    programEnergy(State target) const
    {
        return resetPj_ + setPj_[stateIndex(target)];
    }

    /**
     * Energy of a differential write of one cell.
     * @return 0 if @p target equals @p stored, else programEnergy.
     */
    constexpr double
    writeEnergy(State stored, State target) const
    {
        return stored == target ? 0.0 : programEnergy(target);
    }

    constexpr double resetPj() const { return resetPj_; }
    constexpr double setPj(State s) const { return setPj_[stateIndex(s)]; }

    /**
     * The paper's Figure 14 scaling: reduce the intermediate/high
     * state SET energies while keeping S1 and S2 unchanged.
     */
    static constexpr EnergyModel
    withHighStateEnergies(double s3_pj, double s4_pj)
    {
        return EnergyModel(36.0, {0.0, 20.0, s3_pj, s4_pj});
    }

  private:
    double resetPj_ = 36.0;
    std::array<double, numStates> setPj_{0.0, 20.0, 307.0, 547.0};
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_ENERGY_MODEL_HH
