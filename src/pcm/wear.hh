/**
 * @file
 * Per-cell wear tracking and lifetime projection.
 *
 * PCM endurance is bounded by per-cell write counts (the paper uses
 * "updated cells per write" as its endurance proxy; this module adds
 * the cell-level view a memory vendor would track). A WearTracker
 * records how many RESET programs each cell of each line received
 * and projects device lifetime under a cell endurance budget.
 */

#ifndef WLCRC_PCM_WEAR_HH
#define WLCRC_PCM_WEAR_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "pcm/cell.hh"

namespace wlcrc::pcm
{

/** Wear summary across all tracked lines. */
struct WearSummary
{
    uint64_t maxCellWrites = 0;   //!< most-worn cell
    double avgCellWrites = 0.0;   //!< mean over touched cells
    uint64_t touchedCells = 0;    //!< cells written at least once
    uint64_t totalWrites = 0;     //!< total cell programs
    /** Coefficient of variation (stddev/mean) over touched cells:
     *  0.0 = perfectly even wear across every written cell. */
    double covCellWrites = 0.0;
    /** Ratio max/avg: 1.0 = perfectly even wear. */
    double imbalance() const;
};

/** Tracks per-cell program counts. */
class WearTracker
{
  public:
    explicit WearTracker(unsigned cells_per_line)
        : cellsPerLine_(cells_per_line)
    {}

    /** Record that cell @p cell of line @p addr was programmed. */
    void recordProgram(uint64_t addr, unsigned cell);

    /** Record a whole-line update mask. */
    void recordLine(uint64_t addr, const std::vector<bool> &updated);

    /** Allocation-free variant used by the device's write path. */
    void recordLine(uint64_t addr, const CellMask &updated);

    /**
     * Fold another tracker's per-cell counts into this one. Used to
     * combine the per-shard trackers of a sharded replay (shards
     * partition the address space, so maps are typically disjoint;
     * overlapping lines add cell-wise, so merged totals equal a
     * single-shard replay of the concatenated streams).
     *
     * @throws std::invalid_argument if the trackers' cellsPerLine
     *         differ, or if @p o is this tracker itself (a
     *         self-merge would silently double every count).
     */
    void merge(const WearTracker &o);

    /** Write count of one cell (0 if untouched). */
    uint64_t cellWrites(uint64_t addr, unsigned cell) const;

    /** Per-cell counts of one line, or nullptr if never written. */
    const std::vector<uint32_t> *lineWear(uint64_t addr) const;

    /** Aggregate wear statistics. */
    WearSummary summary() const;

    /**
     * Wear histogram: for each observed per-cell write count, the
     * number of touched cells with exactly that count. Ordered by
     * write count, so iterating it is deterministic (CSV export).
     */
    std::map<uint32_t, uint64_t> histogram() const;

    /** Number of distinct lines with at least one tracked write. */
    std::size_t trackedLines() const { return wear_.size(); }

    /**
     * Projected writes-to-first-cell-failure for a per-cell
     * endurance of @p cell_endurance programs, extrapolating the
     * observed wear distribution linearly.
     *
     * @return projected number of further line writes before the
     *         most-worn cell exceeds its endurance, or 0 if it
     *         already has.
     */
    uint64_t projectedLifetime(uint64_t cell_endurance,
                               uint64_t line_writes_so_far) const;

    unsigned cellsPerLine() const { return cellsPerLine_; }

  private:
    unsigned cellsPerLine_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> wear_;
};

} // namespace wlcrc::pcm

#endif // WLCRC_PCM_WEAR_HH
