#include "device.hh"

#include <cassert>

namespace wlcrc::pcm
{

Device::Device(unsigned cells_per_line, const WriteUnit &unit,
               uint64_t seed)
    : cellsPerLine_(cells_per_line), unit_(unit), rng_(seed)
{
}

std::vector<State> &
Device::line(uint64_t addr)
{
    auto it = lines_.find(addr);
    if (it == lines_.end()) {
        it = lines_
                 .emplace(addr, std::vector<State>(cellsPerLine_,
                                                   State::S1))
                 .first;
    }
    return it->second;
}

bool
Device::hasLine(uint64_t addr) const
{
    return lines_.count(addr) != 0;
}

WriteStats
Device::write(uint64_t addr, const TargetLine &target,
              bool verify_n_restore)
{
    assert(target.cells.size() == cellsPerLine_);
    auto &stored = line(addr);
    if (wear_) {
        std::vector<bool> updated(cellsPerLine_);
        for (unsigned c = 0; c < cellsPerLine_; ++c)
            updated[c] = stored[c] != target.cells[c];
        wear_->recordLine(addr, updated);
    }
    const WriteStats st =
        unit_.program(stored, target, rng_, verify_n_restore);
    totals_ += st;
    ++writes_;
    return st;
}

void
Device::attachWearTracker(WearTracker *tracker)
{
    assert(!tracker || tracker->cellsPerLine() == cellsPerLine_);
    wear_ = tracker;
}

void
Device::resetStats()
{
    totals_ = WriteStats();
    writes_ = 0;
}

} // namespace wlcrc::pcm
