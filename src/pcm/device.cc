#include "device.hh"

#include <cassert>

namespace wlcrc::pcm
{

Device::Device(unsigned cells_per_line, const WriteUnit &unit,
               uint64_t seed)
    : cellsPerLine_(cells_per_line), unit_(unit), rng_(seed)
{
}

std::vector<State> &
Device::line(uint64_t addr)
{
    auto it = lines_.find(addr);
    if (it == lines_.end()) {
        it = lines_
                 .emplace(addr, std::vector<State>(cellsPerLine_,
                                                   State::S1))
                 .first;
    }
    return it->second;
}

std::vector<State> *
Device::tryLine(uint64_t addr)
{
    auto it = lines_.find(addr);
    return it == lines_.end() ? nullptr : &it->second;
}

bool
Device::hasLine(uint64_t addr) const
{
    return lines_.count(addr) != 0;
}

WriteStats
Device::write(uint64_t addr, const TargetLine &target,
              bool verify_n_restore)
{
    return writeLine(addr, line(addr), target, verify_n_restore);
}

WriteStats
Device::writeLine(uint64_t addr, std::vector<State> &stored,
                  const TargetLine &target, bool verify_n_restore)
{
    assert(target.size() == cellsPerLine_);
    assert(&stored == &line(addr));
    if (wear_) {
        CellMask updated;
        updated.reset(cellsPerLine_);
        for (unsigned c = 0; c < cellsPerLine_; ++c)
            if (stored[c] != target[c])
                updated.set(c);
        wear_->recordLine(addr, updated);
    }
    const WriteStats st =
        unit_.program(stored, target, rng_, verify_n_restore);
    totals_ += st;
    ++writes_;
    return st;
}

void
Device::attachWearTracker(WearTracker *tracker)
{
    assert(!tracker || tracker->cellsPerLine() == cellsPerLine_);
    wear_ = tracker;
}

void
Device::resetStats()
{
    totals_ = WriteStats();
    writes_ = 0;
}

} // namespace wlcrc::pcm
