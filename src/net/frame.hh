/**
 * @file
 * Length-prefixed TCP framing shared by every wire protocol in the
 * tree. A connection carries a sequence of frames, each opening
 * with a fixed 12-byte little-endian header:
 *
 *   u32 magic        protocol identifier ("WSV1", "WRK1", ...)
 *   u8  type         protocol-defined frame type
 *   u8  flags        protocol-defined flag bits
 *   u16 reserved     0
 *   u32 payloadBytes length of the payload that follows
 *
 * The layer is deliberately magic-parameterised: the live service
 * (serve/protocol.hh, "WSV1") and the distributed sweep protocol
 * (runner/remote.hh, "WRK1") share one framing implementation —
 * EINTR-safe reads, MSG_NOSIGNAL sends, payload-cap enforcement,
 * reusable payload buffers — and differ only in magic, frame types
 * and payload encodings.
 *
 * Framing errors are values, never exceptions: a misbehaving peer
 * maps to a named RecvStatus the caller counts and handles without
 * collateral damage to other connections.
 */

#ifndef WLCRC_NET_FRAME_HH
#define WLCRC_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlcrc::net
{

/** Serialized size of a frame header. */
inline constexpr uint32_t frameHeaderBytes = 12;

/** Decoded frame header (magic checked, not stored). */
struct FrameHeader
{
    uint8_t type = 0;
    uint8_t flags = 0;
    uint32_t payloadBytes = 0;
};

/** Outcome of reading one frame off a socket. */
enum class RecvStatus
{
    Ok,        //!< header + payload fully read
    CleanEof,  //!< orderly EOF on a frame boundary
    BadMagic,  //!< header did not open with the expected magic
    Oversized, //!< payloadBytes above the protocol's cap
    Truncated, //!< EOF or error mid-header / mid-payload
};

/** Telemetry error name of a failed recv ("" for Ok/CleanEof). */
const char *recvErrorName(RecvStatus s);

/** Serialize @p h under @p magic into @p dst[frameHeaderBytes]. */
void encodeFrameHeader(uint8_t *dst, uint32_t magic,
                       const FrameHeader &h);

/**
 * Write @p n bytes to @p fd, restarting on EINTR / short writes.
 * Uses MSG_NOSIGNAL, so a vanished peer is a false return on this
 * connection, never a process-wide SIGPIPE.
 * @return false on any write error (peer gone).
 */
bool writeAll(int fd, const void *data, std::size_t n);

/**
 * Send one frame under @p magic. @return false if the peer is gone
 * — senders treat that as a disconnect, never an exception.
 */
bool sendFrame(int fd, uint32_t magic, uint8_t type, uint8_t flags,
               const void *payload, std::size_t payloadBytes);

/**
 * Read one frame into @p header / @p payload, validating the magic
 * and the @p maxPayload cap. @p payload is reused across calls
 * (resized, capacity kept), so a steady-state connection loop
 * performs no per-frame allocation once warm.
 */
RecvStatus recvFrame(int fd, uint32_t magic, uint32_t maxPayload,
                     FrameHeader &header,
                     std::vector<uint8_t> &payload);

} // namespace wlcrc::net

#endif // WLCRC_NET_FRAME_HH
