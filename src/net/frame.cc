#include "frame.hh"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

#include "tracefile/format.hh"

namespace wlcrc::net
{

namespace
{

/** Result of readAll: full read, clean EOF at offset 0, or short. */
enum class ReadStatus
{
    Ok,
    Eof,
    Short,
};

ReadStatus
readAll(int fd, void *data, std::size_t n)
{
    auto *p = static_cast<uint8_t *>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return got == 0 ? ReadStatus::Eof : ReadStatus::Short;
    }
    return ReadStatus::Ok;
}

} // namespace

const char *
recvErrorName(RecvStatus s)
{
    switch (s) {
    case RecvStatus::BadMagic:
        return "bad-magic";
    case RecvStatus::Oversized:
        return "oversized-frame";
    case RecvStatus::Truncated:
        return "truncated-frame";
    case RecvStatus::Ok:
    case RecvStatus::CleanEof:
        break;
    }
    return "";
}

void
encodeFrameHeader(uint8_t *dst, uint32_t magic, const FrameHeader &h)
{
    tracefile::putLe32(dst, magic);
    dst[4] = h.type;
    dst[5] = h.flags;
    dst[6] = 0;
    dst[7] = 0;
    tracefile::putLe32(dst + 8, h.payloadBytes);
}

bool
writeAll(int fd, const void *data, std::size_t n)
{
    const auto *p = static_cast<const uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a peer that hung up must surface as a send
        // error on this connection, never as a process-wide SIGPIPE.
        const ssize_t r =
            ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r > 0) {
            sent += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
sendFrame(int fd, uint32_t magic, uint8_t type, uint8_t flags,
          const void *payload, std::size_t payloadBytes)
{
    uint8_t header[frameHeaderBytes];
    FrameHeader h;
    h.type = type;
    h.flags = flags;
    h.payloadBytes = static_cast<uint32_t>(payloadBytes);
    encodeFrameHeader(header, magic, h);
    if (!writeAll(fd, header, sizeof header))
        return false;
    return payloadBytes == 0 || writeAll(fd, payload, payloadBytes);
}

RecvStatus
recvFrame(int fd, uint32_t magic, uint32_t maxPayload,
          FrameHeader &header, std::vector<uint8_t> &payload)
{
    uint8_t raw[frameHeaderBytes];
    switch (readAll(fd, raw, sizeof raw)) {
    case ReadStatus::Eof:
        return RecvStatus::CleanEof;
    case ReadStatus::Short:
        return RecvStatus::Truncated;
    case ReadStatus::Ok:
        break;
    }
    if (tracefile::getLe32(raw) != magic)
        return RecvStatus::BadMagic;
    header.type = raw[4];
    header.flags = raw[5];
    header.payloadBytes = tracefile::getLe32(raw + 8);
    if (header.payloadBytes > maxPayload)
        return RecvStatus::Oversized;
    payload.resize(header.payloadBytes);
    if (header.payloadBytes &&
        readAll(fd, payload.data(), header.payloadBytes) !=
            ReadStatus::Ok)
        return RecvStatus::Truncated;
    return RecvStatus::Ok;
}

} // namespace wlcrc::net
