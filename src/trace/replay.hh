/**
 * @file
 * Replayer: drives a codec + PCM device with a transaction stream and
 * aggregates the per-write metrics the paper's figures report.
 *
 * For the first write to a line, the replayer primes the device with
 * the transaction's old contents (unmeasured) so the measured write
 * always differentiates against realistically encoded prior state.
 */

#ifndef WLCRC_TRACE_REPLAY_HH
#define WLCRC_TRACE_REPLAY_HH

#include <cstdint>
#include <functional>

#include "coset/codec.hh"
#include "pcm/device.hh"
#include "stats/stats.hh"
#include "trace/transaction.hh"

namespace wlcrc::trace
{

/** Aggregated per-write metrics over a replay. */
struct ReplayResult
{
    stats::RunningStat energyPj;        //!< total energy per write
    stats::RunningStat dataEnergyPj;    //!< data-cell energy
    stats::RunningStat auxEnergyPj;     //!< aux-cell energy
    stats::RunningStat updatedCells;    //!< cells programmed
    stats::RunningStat dataUpdated;
    stats::RunningStat auxUpdated;
    stats::RunningStat disturbErrors;   //!< disturbance errors
    stats::RunningStat dataDisturbed;
    stats::RunningStat auxDisturbed;
    uint64_t writes = 0;
    uint64_t compressedWrites = 0; //!< flag-cell = compressed formats
    uint64_t vnrIterations = 0;    //!< total Verify-n-Restore passes

    /**
     * Fold another replay's metrics into this one, as if both
     * transaction streams had been replayed back-to-back. Used to
     * combine per-shard results of a sharded replay.
     */
    void merge(const ReplayResult &o);
};

/** Replays transactions through one codec onto one device. */
class Replayer
{
  public:
    /**
     * @param codec  encoding scheme under test.
     * @param unit   energy/disturbance model.
     * @param seed   device disturbance-sampling seed.
     * @param verify_n_restore  run the VnR repair loop per write.
     */
    Replayer(const coset::LineCodec &codec, const pcm::WriteUnit &unit,
             uint64_t seed = 7, bool verify_n_restore = false);

    /** Replay one transaction (priming the line if first touch). */
    pcm::WriteStats step(const WriteTransaction &txn);

    /** Replay @p count transactions pulled from @p source. */
    template <typename Source>
    void
    run(Source &source, uint64_t count)
    {
        for (uint64_t i = 0; i < count; ++i)
            step(source.next());
    }

    const ReplayResult &result() const { return result_; }
    pcm::Device &device() { return device_; }

  private:
    const coset::LineCodec &codec_;
    pcm::Device device_;
    ReplayResult result_;
    bool vnr_;
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_REPLAY_HH
