/**
 * @file
 * Replayer: drives a codec + PCM device with a transaction stream and
 * aggregates the per-write metrics the paper's figures report.
 *
 * For the first write to a line, the replayer primes the device with
 * the transaction's old contents (unmeasured) so the measured write
 * always differentiates against realistically encoded prior state.
 *
 * The replayer owns one EncodeScratch and one TargetLine, so a
 * steady-state write performs no heap allocation. runBatch() is the
 * streaming entry the sharded runner uses: it gathers transactions
 * into fixed-size blocks and encodes each block's independent
 * (distinct-line) prefix through LineCodec::encodeBatch — one virtual
 * dispatch per block instead of per write, with identical results to
 * step()-ing every transaction in order.
 */

#ifndef WLCRC_TRACE_REPLAY_HH
#define WLCRC_TRACE_REPLAY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "coset/codec.hh"
#include "pcm/device.hh"
#include "stats/stats.hh"
#include "trace/transaction.hh"

namespace wlcrc::trace
{

/** Aggregated per-write metrics over a replay. */
struct ReplayResult
{
    stats::RunningStat energyPj;        //!< total energy per write
    stats::RunningStat dataEnergyPj;    //!< data-cell energy
    stats::RunningStat auxEnergyPj;     //!< aux-cell energy
    stats::RunningStat updatedCells;    //!< cells programmed
    stats::RunningStat dataUpdated;
    stats::RunningStat auxUpdated;
    stats::RunningStat disturbErrors;   //!< disturbance errors
    stats::RunningStat dataDisturbed;
    stats::RunningStat auxDisturbed;
    uint64_t writes = 0;
    uint64_t compressedWrites = 0; //!< flag-cell = compressed formats
    uint64_t vnrIterations = 0;    //!< total Verify-n-Restore passes

    /**
     * Fold another replay's metrics into this one, as if both
     * transaction streams had been replayed back-to-back. Used to
     * combine per-shard results of a sharded replay.
     */
    void merge(const ReplayResult &o);
};

/** Replays transactions through one codec onto one device. */
class Replayer
{
  public:
    /** Transactions gathered per runBatch() block. */
    static constexpr std::size_t batchLines = 32;

    /**
     * @param codec  encoding scheme under test.
     * @param unit   energy/disturbance model.
     * @param seed   device disturbance-sampling seed.
     * @param verify_n_restore  run the VnR repair loop per write.
     */
    Replayer(const coset::LineCodec &codec, const pcm::WriteUnit &unit,
             uint64_t seed = 7, bool verify_n_restore = false);

    /** Replay one transaction (priming the line if first touch). */
    pcm::WriteStats step(const WriteTransaction &txn);

    /** Replay @p count transactions pulled from @p source. */
    template <typename Source>
    void
    run(Source &source, uint64_t count)
    {
        for (uint64_t i = 0; i < count; ++i) {
            const WriteTransaction &txn = source.next();
            step(txn);
        }
    }

    /**
     * Streaming batched replay. @p fill is called with a slot to
     * write the next transaction into and returns false when the
     * stream is exhausted. Results are identical to step()-ing the
     * same stream in order.
     *
     * @return number of transactions replayed.
     */
    template <typename FillFn>
    uint64_t
    runBatch(FillFn &&fill)
    {
        uint64_t total = 0;
        for (;;) {
            std::size_t n = 0;
            while (n < batchLines && fill(batch_[n]))
                ++n;
            if (n == 0)
                break;
            replayBlock(batch_.data(), n);
            total += n;
            if (n < batchLines)
                break;
        }
        return total;
    }

    const ReplayResult &result() const { return result_; }
    pcm::Device &device() { return device_; }

  private:
    /** Replay a block sequentially-equivalently (see .cc). */
    void replayBlock(const WriteTransaction *txns, std::size_t n);
    /** Encode-and-write @p count distinct-line transactions. */
    void replayIndependent(const WriteTransaction *txns,
                           std::size_t count);
    /** Prime the line on first touch; @return its stored states. */
    std::vector<pcm::State> &primedLine(const WriteTransaction &txn);
    /** Program @p target and fold the write into the result. */
    pcm::WriteStats applyWrite(const WriteTransaction &txn,
                               const pcm::TargetLine &target,
                               std::vector<pcm::State> &stored);

    const coset::LineCodec &codec_;
    pcm::Device device_;
    ReplayResult result_;
    bool vnr_;
    //! WLCRC_PREFETCH=1: software-prefetch each batch's stored lines
    //! ahead of encodeBatch. A hint only; never changes results.
    bool prefetch_;
    coset::EncodeScratch scratch_;
    pcm::TargetLine staging_;
    std::vector<WriteTransaction> batch_;
    std::vector<pcm::TargetLine> targets_;
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_REPLAY_HH
