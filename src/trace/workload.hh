/**
 * @file
 * Benchmark workload profiles and the trace synthesizer.
 *
 * Substitution for the paper's Simics-collected SPEC CPU2006 / PARSEC
 * traces (see DESIGN.md): each benchmark is modelled by a line-type
 * mix (which fixes its compressibility signature, Figure 4), a write
 * locality model (which fixes how many cells change per write), a
 * footprint and a memory intensity class. The synthesizer maintains a
 * coherent memory image, so every transaction carries the true
 * (old, new) pair exactly like the paper's traces.
 */

#ifndef WLCRC_TRACE_WORKLOAD_HH
#define WLCRC_TRACE_WORKLOAD_HH

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "trace/transaction.hh"
#include "trace/value_model.hh"

namespace wlcrc::trace
{

/** Static description of one benchmark's memory behaviour. */
struct WorkloadProfile
{
    std::string name;          //!< paper's abbreviation, e.g. "lesl"
    bool highIntensity;        //!< HMI vs LMI grouping (Figure 8)
    /** Probability of each LineType for a fresh line. */
    std::array<double, numLineTypes> lineTypeProbs;
    /** Probability each word of a line is modified by a write. */
    double wordChangeProb;
    /** Distinct lines in the synthetic footprint. */
    unsigned footprintLines;

    /** The 13 paper workloads (12 SPEC + canneal), paper order. */
    static const std::vector<WorkloadProfile> &all();
    /** Profile by name. @throws std::invalid_argument if unknown. */
    static const WorkloadProfile &byName(const std::string &name);
};

/**
 * Stateful generator of WriteTransactions for one profile.
 * Deterministic for a given (profile, seed).
 */
class TraceSynthesizer
{
  public:
    TraceSynthesizer(const WorkloadProfile &profile, uint64_t seed);

    /**
     * Generate the next write transaction. Returns a reference to an
     * internal slot (no 136-byte copy per write); valid until the
     * following next() call.
     */
    const WriteTransaction &next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    struct LineState
    {
        Line512 data;
        LineType type;
    };

    LineState &lineAt(uint64_t addr);
    uint64_t pickAddress();
    LineType pickType();

    WorkloadProfile profile_;
    Rng rng_;
    std::unordered_map<uint64_t, LineState> image_;
    WriteTransaction current_;
};

/**
 * The paper's random workload (Figures 1a and 2): independent
 * uniformly random old/new line pairs at fresh addresses.
 */
class RandomWorkload
{
  public:
    explicit RandomWorkload(uint64_t seed) : rng_(seed) {}

    /** Next transaction; reference valid until the next call. */
    const WriteTransaction &next();

  private:
    Rng rng_;
    uint64_t nextAddr_ = 0;
    WriteTransaction current_;
};

/**
 * Multi-programmed workload blend: several benchmark profiles
 * time-share one memory, the way a rank under a multi-core write
 * stream would see them. Each write picks a program with probability
 * proportional to its weight (≈ relative memory intensity), then
 * draws the transaction from that program's own synthesizer.
 * Programs live in disjoint address windows (program i is offset by
 * the summed footprints before it), so per-line write histories stay
 * coherent and the stream is address-clustered per program — which
 * is exactly what the WLCTRC02 block index prunes on.
 * Deterministic for a given (programs, weights, seed); program i's
 * synthesizer is seeded with childSeed(seed, i).
 */
class MixedSynthesizer
{
  public:
    /** One program of the blend. */
    struct Program
    {
        std::string profile; //!< WorkloadProfile name
        double weight = 1.0; //!< relative share of the write stream
    };

    /**
     * @throws std::invalid_argument if @p programs is empty, a
     * profile name is unknown, or a weight is not positive.
     */
    MixedSynthesizer(const std::vector<Program> &programs,
                     uint64_t seed);

    /** Next write of the blend; reference valid until the next call. */
    const WriteTransaction &next();

    /** Address window base of program @p i. */
    uint64_t baseOf(std::size_t i) const { return bases_[i]; }
    std::size_t programCount() const { return synths_.size(); }

  private:
    Rng rng_; //!< program-selection stream (separate from programs')
    std::vector<TraceSynthesizer> synths_;
    std::vector<double> cumWeight_; //!< normalised, cumulative
    std::vector<uint64_t> bases_;
    WriteTransaction current_;
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_WORKLOAD_HH
