/**
 * @file
 * Synthetic data-value models.
 *
 * The paper's traces come from SPEC CPU2006 / PARSEC runs; what the
 * evaluated schemes actually consume is the distribution of 64-bit
 * word values and their temporal evolution. We model words by class
 * — the classes the compression literature identifies in real
 * workloads (zeros, narrow positive/negative integers, pointers,
 * floating point, near-random) plus a "mid-magnitude" class whose
 * MSB run is 6-8 bits, which controls where WLC's coverage cliff
 * falls (Figure 4). Lines are homogeneous: a line type fixes its
 * word-class mix, reflecting spatial locality of data structures.
 */

#ifndef WLCRC_TRACE_VALUE_MODEL_HH
#define WLCRC_TRACE_VALUE_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/line512.hh"
#include "common/rng.hh"

namespace wlcrc::trace
{

/** Line types with distinct compressibility signatures. */
enum class LineType : uint8_t
{
    Zeroish,   //!< zeros + narrow ints: everything compresses
    Integer,   //!< narrow ints/pointers: WLC yes, FPC+BDI mostly no
    Mid6,      //!< MSB runs of exactly 6-8: WLC k<=6 only
    Mid7,      //!< MSB runs of exactly 7-8: WLC k<=7 only
    Float,     //!< doubles: WLC no, COC mostly no
    Random,    //!< high entropy: nothing compresses
    NumTypes
};

/** Number of line types. */
inline constexpr unsigned numLineTypes =
    static_cast<unsigned>(LineType::NumTypes);

const char *lineTypeName(LineType t);

/** Per-line-type word value generator. */
class ValueModel
{
  public:
    /** Draw a fresh 64-bit word of the given line type. */
    static uint64_t generateWord(LineType t, Rng &rng);

    /** Draw a full line of the given type. */
    static Line512 generateLine(LineType t, Rng &rng);

    /**
     * Mutate @p word in a type-consistent way (e.g. an int gets
     * incremented or replaced, a double is re-drawn), preserving the
     * class's MSB-run signature so WLC compressibility is stable
     * across rewrites of the same data structure.
     */
    static uint64_t mutateWord(LineType t, uint64_t word, Rng &rng);

  private:
    static uint64_t smallPositive(Rng &rng);
    static uint64_t smallNegative(Rng &rng);
    static uint64_t pointerLike(Rng &rng);
    static uint64_t packedShorts(Rng &rng, unsigned field_bits = 13);
    static uint64_t packedMidShorts(Rng &rng, unsigned run);
    static uint64_t packedInts(Rng &rng);
    static uint64_t midRun(Rng &rng, unsigned run_lo, unsigned run_hi);
    static uint64_t doubleLike(Rng &rng);
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_VALUE_MODEL_HH
