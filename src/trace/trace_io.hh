/**
 * @file
 * Binary trace file format, so externally collected traces (gem5,
 * Pin, Simics) can be replayed through the same pipeline as the
 * synthetic workloads.
 *
 * Format: 8-byte magic "WLCTRC01", then records of
 *   u64 lineAddr | 64 bytes old data | 64 bytes new data
 * in little-endian byte order.
 */

#ifndef WLCRC_TRACE_TRACE_IO_HH
#define WLCRC_TRACE_TRACE_IO_HH

#include <fstream>
#include <optional>
#include <string>

#include "trace/transaction.hh"

namespace wlcrc::trace
{

/** Sequential trace file writer. */
class TraceWriter
{
  public:
    /** @throws std::runtime_error if the file cannot be opened. */
    explicit TraceWriter(const std::string &path);

    void write(const WriteTransaction &txn);

    /**
     * Flush and close the file. Idempotent.
     * @throws std::runtime_error if any write failed (a full disk
     * must not pass for a successfully persisted trace).
     */
    void close();

    uint64_t written() const { return count_; }

  private:
    std::ofstream out_;
    std::string path_;
    uint64_t count_ = 0;
};

/** Sequential trace file reader. */
class TraceReader
{
  public:
    /** @throws std::runtime_error on open failure or bad magic. */
    explicit TraceReader(const std::string &path);

    /**
     * @return the next transaction, or nullopt at clean end of file.
     * @throws std::runtime_error if the file ends mid-record (a
     * truncated dump must not silently pass for a shorter trace);
     * the message names the offending byte offset.
     */
    std::optional<WriteTransaction> read();

  private:
    std::ifstream in_;
    std::string path_;
    uint64_t offset_; //!< byte offset of the next unread record
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_TRACE_IO_HH
