/**
 * @file
 * Binary trace file format, so externally collected traces (gem5,
 * Pin, Simics) can be replayed through the same pipeline as the
 * synthetic workloads.
 *
 * Format: 8-byte magic "WLCTRC01", then records of
 *   u64 lineAddr | 64 bytes old data | 64 bytes new data
 * in little-endian byte order.
 */

#ifndef WLCRC_TRACE_TRACE_IO_HH
#define WLCRC_TRACE_TRACE_IO_HH

#include <fstream>
#include <optional>
#include <string>

#include "trace/transaction.hh"

namespace wlcrc::trace
{

/** Sequential trace file writer. */
class TraceWriter
{
  public:
    /** @throws std::runtime_error if the file cannot be opened. */
    explicit TraceWriter(const std::string &path);

    void write(const WriteTransaction &txn);

    uint64_t written() const { return count_; }

  private:
    std::ofstream out_;
    uint64_t count_ = 0;
};

/** Sequential trace file reader. */
class TraceReader
{
  public:
    /** @throws std::runtime_error on open failure or bad magic. */
    explicit TraceReader(const std::string &path);

    /** @return the next transaction, or nullopt at end of file. */
    std::optional<WriteTransaction> read();

  private:
    std::ifstream in_;
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_TRACE_IO_HH
