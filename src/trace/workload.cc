#include "workload.hh"

#include <cassert>
#include <stdexcept>

namespace wlcrc::trace
{

namespace
{

/** Shorthand for profile tables: {Zeroish, Int, Mid6, Mid7, Float,
 *  Random}. Probabilities must sum to 1. */
WorkloadProfile
prof(const char *name, bool hmi,
     std::array<double, numLineTypes> types, double change,
     unsigned footprint = 4096)
{
    double sum = 0;
    for (double p : types)
        sum += p;
    assert(sum > 0.999 && sum < 1.001);
    return {name, hmi, types, change, footprint};
}

} // namespace

const std::vector<WorkloadProfile> &
WorkloadProfile::all()
{
    // Line-type mixes are tuned so the aggregate reproduces the
    // paper's measured data properties: WLC coverage ~91 % for k<=6
    // falling to ~50 % for k>=7 (Figure 4), FPC+BDI coverage ~30 %,
    // COC coverage >90 %, and the HMI/LMI energy separation of
    // Figure 8. Intensity (words changed per write) drives write
    // energy; float-heavy mixes (lesl, lbm) reproduce the endurance
    // outliers of Figure 9.
    static const std::vector<WorkloadProfile> profiles = {
        // High memory intensity (HMI).
        prof("lesl", true, {0.14, 0.08, 0.66, 0.06, 0.04, 0.02},
             0.85),
        prof("milc", true, {0.20, 0.06, 0.59, 0.06, 0.05, 0.04},
             0.80),
        prof("wrf", true, {0.52, 0.06, 0.30, 0.04, 0.05, 0.03},
             0.65),
        prof("sopl", true, {0.24, 0.18, 0.44, 0.05, 0.06, 0.03},
             0.70),
        prof("zeus", true, {0.30, 0.10, 0.46, 0.04, 0.07, 0.03},
             0.60),
        prof("lbm", true, {0.14, 0.10, 0.56, 0.04, 0.12, 0.04},
             0.70),
        prof("gcc", true, {0.40, 0.32, 0.18, 0.03, 0.02, 0.05},
             0.50),
        // Low memory intensity (LMI).
        prof("asta", false, {0.36, 0.38, 0.16, 0.03, 0.02, 0.05},
             0.35),
        prof("mcf", false, {0.30, 0.48, 0.10, 0.02, 0.01, 0.09},
             0.30),
        prof("cann", false, {0.26, 0.42, 0.19, 0.03, 0.04, 0.06},
             0.40),
        prof("libq", false, {0.62, 0.18, 0.16, 0.02, 0.00, 0.02},
             0.25),
        prof("omne", false, {0.40, 0.28, 0.23, 0.03, 0.02, 0.04},
             0.30),
    };
    return profiles;
}

const WorkloadProfile &
WorkloadProfile::byName(const std::string &name)
{
    for (const auto &p : all())
        if (p.name == name)
            return p;
    throw std::invalid_argument("unknown workload: " + name);
}

TraceSynthesizer::TraceSynthesizer(const WorkloadProfile &profile,
                                   uint64_t seed)
    : profile_(profile), rng_(seed)
{
}

LineType
TraceSynthesizer::pickType()
{
    double p = rng_.nextDouble();
    for (unsigned t = 0; t < numLineTypes; ++t) {
        p -= profile_.lineTypeProbs[t];
        if (p < 0)
            return static_cast<LineType>(t);
    }
    return LineType::Random;
}

uint64_t
TraceSynthesizer::pickAddress()
{
    // 80/20 hot/cold split: writes exhibit strong reuse.
    const uint64_t n = profile_.footprintLines;
    const uint64_t hot = std::max<uint64_t>(1, n / 5);
    if (rng_.chance(0.8))
        return rng_.nextBelow(hot);
    return hot + rng_.nextBelow(n - hot);
}

TraceSynthesizer::LineState &
TraceSynthesizer::lineAt(uint64_t addr)
{
    auto it = image_.find(addr);
    if (it == image_.end()) {
        LineState fresh;
        fresh.type = pickType();
        fresh.data = ValueModel::generateLine(fresh.type, rng_);
        it = image_.emplace(addr, std::move(fresh)).first;
    }
    return it->second;
}

const WriteTransaction &
TraceSynthesizer::next()
{
    const uint64_t addr = pickAddress();
    LineState &line = lineAt(addr);

    WriteTransaction &txn = current_;
    txn.lineAddr = addr;
    txn.oldData = line.data;

    Line512 next = line.data;
    for (unsigned w = 0; w < lineWords; ++w) {
        if (!rng_.chance(profile_.wordChangeProb))
            continue;
        next.setWord(w, ValueModel::mutateWord(line.type,
                                               next.word(w), rng_));
    }
    // A write transaction always modifies something; mutateWord may
    // redraw an identical value (e.g. zero -> zero), so retry until
    // the line actually differs.
    while (next == line.data) {
        const unsigned w =
            static_cast<unsigned>(rng_.nextBelow(lineWords));
        next.setWord(w, ValueModel::mutateWord(line.type,
                                               next.word(w), rng_));
    }
    line.data = next;
    txn.newData = next;
    return txn;
}

MixedSynthesizer::MixedSynthesizer(
    const std::vector<Program> &programs, uint64_t seed)
    : rng_(seed)
{
    if (programs.empty())
        throw std::invalid_argument(
            "MixedSynthesizer: needs at least one program");
    double total = 0;
    uint64_t base = 0;
    synths_.reserve(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        if (programs[i].weight <= 0)
            throw std::invalid_argument(
                "MixedSynthesizer: weight of " +
                programs[i].profile + " must be positive");
        const auto &profile =
            WorkloadProfile::byName(programs[i].profile);
        synths_.emplace_back(profile, childSeed(seed, i));
        bases_.push_back(base);
        base += profile.footprintLines;
        total += programs[i].weight;
        cumWeight_.push_back(total);
    }
    for (double &w : cumWeight_)
        w /= total;
}

const WriteTransaction &
MixedSynthesizer::next()
{
    const double p = rng_.nextDouble();
    std::size_t i = 0;
    while (i + 1 < cumWeight_.size() && p >= cumWeight_[i])
        ++i;
    current_ = synths_[i].next();
    current_.lineAddr += bases_[i]; // rebase into the window
    return current_;
}

const WriteTransaction &
RandomWorkload::next()
{
    WriteTransaction &txn = current_;
    txn.lineAddr = nextAddr_++;
    for (unsigned w = 0; w < lineWords; ++w) {
        txn.oldData.setWord(w, rng_.next());
        txn.newData.setWord(w, rng_.next());
    }
    return txn;
}

} // namespace wlcrc::trace
