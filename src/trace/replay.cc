#include "replay.hh"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/env.hh"

namespace wlcrc::trace
{

void
ReplayResult::merge(const ReplayResult &o)
{
    energyPj.merge(o.energyPj);
    dataEnergyPj.merge(o.dataEnergyPj);
    auxEnergyPj.merge(o.auxEnergyPj);
    updatedCells.merge(o.updatedCells);
    dataUpdated.merge(o.dataUpdated);
    auxUpdated.merge(o.auxUpdated);
    disturbErrors.merge(o.disturbErrors);
    dataDisturbed.merge(o.dataDisturbed);
    auxDisturbed.merge(o.auxDisturbed);
    writes += o.writes;
    compressedWrites += o.compressedWrites;
    vnrIterations += o.vnrIterations;
}

Replayer::Replayer(const coset::LineCodec &codec,
                   const pcm::WriteUnit &unit, uint64_t seed,
                   bool verify_n_restore)
    : codec_(codec), device_(codec.cellCount(), unit, seed),
      vnr_(verify_n_restore),
      prefetch_(envU64("WLCRC_PREFETCH", 0) != 0),
      batch_(batchLines), targets_(batchLines)
{
}

std::vector<pcm::State> &
Replayer::primedLine(const WriteTransaction &txn)
{
    if (auto *stored = device_.tryLine(txn.lineAddr))
        return *stored;
    // Prime: store the old contents, unmeasured.
    auto &stored = device_.line(txn.lineAddr);
    codec_.encodeInto(txn.oldData, {stored.data(), stored.size()},
                      scratch_, staging_);
    std::copy_n(staging_.states(), staging_.size(), stored.begin());
    return stored;
}

pcm::WriteStats
Replayer::applyWrite(const WriteTransaction &txn,
                     const pcm::TargetLine &target,
                     std::vector<pcm::State> &stored)
{
    // Compression-flag bookkeeping for single-flag-cell formats.
    if (target.size() == lineSymbols + 1 &&
        target.aux(lineSymbols) &&
        target[lineSymbols] != pcm::State::S2) {
        ++result_.compressedWrites;
    }

    const pcm::WriteStats st =
        device_.writeLine(txn.lineAddr, stored, target, vnr_);
    result_.energyPj.add(st.totalEnergyPj());
    result_.dataEnergyPj.add(st.dataEnergyPj);
    result_.auxEnergyPj.add(st.auxEnergyPj);
    result_.updatedCells.add(st.totalUpdated());
    result_.dataUpdated.add(st.dataUpdated);
    result_.auxUpdated.add(st.auxUpdated);
    result_.disturbErrors.add(st.totalDisturbed());
    result_.dataDisturbed.add(st.dataDisturbed);
    result_.auxDisturbed.add(st.auxDisturbed);
    result_.vnrIterations += st.vnrIterations;
    ++result_.writes;
    return st;
}

pcm::WriteStats
Replayer::step(const WriteTransaction &txn)
{
    auto &stored = primedLine(txn);
    codec_.encodeInto(txn.newData, {stored.data(), stored.size()},
                      scratch_, staging_);
    return applyWrite(txn, staging_, stored);
}

void
Replayer::replayIndependent(const WriteTransaction *txns,
                            std::size_t count)
{
    assert(count <= batchLines);
    // Prime first-touch lines in stream order, then collect job
    // pointers: unordered_map guarantees reference stability across
    // inserts, and the block's lines are distinct, so encoding jobs
    // against pre-write states equals encoding them one at a time.
    std::array<coset::LineCodec::EncodeJob, batchLines> jobs;
    std::array<std::vector<pcm::State> *, batchLines> lines;
    for (std::size_t i = 0; i < count; ++i) {
        auto &stored = primedLine(txns[i]);
        lines[i] = &stored;
        jobs[i] = {&txns[i].newData, stored.data(), &targets_[i]};
    }
    if (prefetch_) {
        // Pull every job's stored line toward L1 before the encode
        // loop walks them; a line is at most ~300 one-byte cells, so
        // a prefetch per 64-byte chunk covers it. Purely a memory-
        // system hint — results are identical with the flag off
        // (see BatchPrefetch* in tests/encode_equivalence_test.cc).
        for (std::size_t i = 0; i < count; ++i) {
            const auto *base =
                reinterpret_cast<const char *>(jobs[i].stored);
            const std::size_t bytes = lines[i]->size();
            for (std::size_t off = 0; off < bytes; off += 64)
                __builtin_prefetch(base + off, 0 /* read */);
        }
    }
    codec_.encodeBatch(jobs.data(), count, scratch_);
    for (std::size_t i = 0; i < count; ++i)
        applyWrite(txns[i], targets_[i], *lines[i]);
}

void
Replayer::replayBlock(const WriteTransaction *txns, std::size_t n)
{
    // Split the block into maximal runs of distinct line addresses:
    // a repeated address must observe the preceding write's stored
    // state, so it starts a new run. Blocks are small enough that
    // the quadratic distinctness scan stays cheap.
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i + 1;
        for (; j < n; ++j) {
            bool dup = false;
            for (std::size_t k = i; k < j && !dup; ++k)
                dup = txns[k].lineAddr == txns[j].lineAddr;
            if (dup)
                break;
        }
        replayIndependent(txns + i, j - i);
        i = j;
    }
}

} // namespace wlcrc::trace
