#include "replay.hh"

namespace wlcrc::trace
{

void
ReplayResult::merge(const ReplayResult &o)
{
    energyPj.merge(o.energyPj);
    dataEnergyPj.merge(o.dataEnergyPj);
    auxEnergyPj.merge(o.auxEnergyPj);
    updatedCells.merge(o.updatedCells);
    dataUpdated.merge(o.dataUpdated);
    auxUpdated.merge(o.auxUpdated);
    disturbErrors.merge(o.disturbErrors);
    dataDisturbed.merge(o.dataDisturbed);
    auxDisturbed.merge(o.auxDisturbed);
    writes += o.writes;
    compressedWrites += o.compressedWrites;
    vnrIterations += o.vnrIterations;
}

Replayer::Replayer(const coset::LineCodec &codec,
                   const pcm::WriteUnit &unit, uint64_t seed,
                   bool verify_n_restore)
    : codec_(codec), device_(codec.cellCount(), unit, seed),
      vnr_(verify_n_restore)
{
}

pcm::WriteStats
Replayer::step(const WriteTransaction &txn)
{
    if (!device_.hasLine(txn.lineAddr)) {
        // Prime: store the old contents, unmeasured.
        auto &stored = device_.line(txn.lineAddr);
        const pcm::TargetLine prime =
            codec_.encode(txn.oldData, stored);
        stored = prime.cells;
    }
    auto &stored = device_.line(txn.lineAddr);
    const pcm::TargetLine target = codec_.encode(txn.newData, stored);

    // Compression-flag bookkeeping for single-flag-cell formats.
    if (target.cells.size() == lineSymbols + 1 &&
        target.auxMask[lineSymbols] &&
        target.cells[lineSymbols] != pcm::State::S2) {
        ++result_.compressedWrites;
    }

    const pcm::WriteStats st =
        device_.write(txn.lineAddr, target, vnr_);
    result_.energyPj.add(st.totalEnergyPj());
    result_.dataEnergyPj.add(st.dataEnergyPj);
    result_.auxEnergyPj.add(st.auxEnergyPj);
    result_.updatedCells.add(st.totalUpdated());
    result_.dataUpdated.add(st.dataUpdated);
    result_.auxUpdated.add(st.auxUpdated);
    result_.disturbErrors.add(st.totalDisturbed());
    result_.dataDisturbed.add(st.dataDisturbed);
    result_.auxDisturbed.add(st.auxDisturbed);
    result_.vnrIterations += st.vnrIterations;
    ++result_.writes;
    return st;
}

} // namespace wlcrc::trace
