/**
 * @file
 * WriteTransaction: one PCM line write as recorded by the paper's
 * Simics-based traces — the value to be stored *and* the value being
 * overwritten, since every evaluated scheme sits on top of
 * differential write.
 */

#ifndef WLCRC_TRACE_TRANSACTION_HH
#define WLCRC_TRACE_TRANSACTION_HH

#include <cstdint>

#include "common/line512.hh"

namespace wlcrc::trace
{

/** One 512-bit line write. */
struct WriteTransaction
{
    uint64_t lineAddr = 0; //!< line-aligned address (byte addr >> 6)
    Line512 oldData;       //!< line contents being overwritten
    Line512 newData;       //!< line contents to store
};

} // namespace wlcrc::trace

#endif // WLCRC_TRACE_TRANSACTION_HH
