#include "trace_io.hh"

#include <array>
#include <cstring>
#include <stdexcept>

namespace wlcrc::trace
{

namespace
{

constexpr char magic[8] = {'W', 'L', 'C', 'T', 'R', 'C', '0', '1'};

void
putU64(std::ostream &os, uint64_t v)
{
    std::array<char, 8> buf;
    for (unsigned i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), 8);
}

bool
getU64(std::istream &is, uint64_t &v)
{
    std::array<char, 8> buf;
    if (!is.read(buf.data(), 8))
        return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= uint64_t(static_cast<uint8_t>(buf[i])) << (8 * i);
    return true;
}

void
putLine(std::ostream &os, const Line512 &line)
{
    for (unsigned w = 0; w < lineWords; ++w)
        putU64(os, line.word(w));
}

bool
getLine(std::istream &is, Line512 &line)
{
    for (unsigned w = 0; w < lineWords; ++w) {
        uint64_t v;
        if (!getU64(is, v))
            return false;
        line.setWord(w, v);
    }
    return true;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary)
{
    if (!out_)
        throw std::runtime_error("TraceWriter: cannot open " + path);
    out_.write(magic, sizeof(magic));
}

void
TraceWriter::write(const WriteTransaction &txn)
{
    putU64(out_, txn.lineAddr);
    putLine(out_, txn.oldData);
    putLine(out_, txn.newData);
    ++count_;
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        throw std::runtime_error("TraceReader: cannot open " + path);
    char got[8];
    if (!in_.read(got, 8) || std::memcmp(got, magic, 8) != 0)
        throw std::runtime_error("TraceReader: bad magic in " + path);
}

std::optional<WriteTransaction>
TraceReader::read()
{
    WriteTransaction txn;
    if (!getU64(in_, txn.lineAddr))
        return std::nullopt;
    if (!getLine(in_, txn.oldData) || !getLine(in_, txn.newData))
        throw std::runtime_error("TraceReader: truncated record");
    return txn;
}

} // namespace wlcrc::trace
