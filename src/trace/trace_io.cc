#include "trace_io.hh"

#include <array>
#include <cstring>
#include <stdexcept>

namespace wlcrc::trace
{

namespace
{

constexpr char magic[8] = {'W', 'L', 'C', 'T', 'R', 'C', '0', '1'};

void
putU64(std::ostream &os, uint64_t v)
{
    std::array<char, 8> buf;
    for (unsigned i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), 8);
}

uint64_t
decodeU64(const char *buf)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= uint64_t(static_cast<uint8_t>(buf[i])) << (8 * i);
    return v;
}

void
putLine(std::ostream &os, const Line512 &line)
{
    for (unsigned w = 0; w < lineWords; ++w)
        putU64(os, line.word(w));
}

/** Serialized bytes per record: u64 addr + old line + new line. */
constexpr std::size_t recordSize = 8 + 2 * (lineBits / 8);

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        throw std::runtime_error("TraceWriter: cannot open " + path);
    out_.write(magic, sizeof(magic));
}

void
TraceWriter::write(const WriteTransaction &txn)
{
    putU64(out_, txn.lineAddr);
    putLine(out_, txn.oldData);
    putLine(out_, txn.newData);
    ++count_;
}

void
TraceWriter::close()
{
    if (!out_.is_open())
        return;
    out_.close();
    if (!out_)
        throw std::runtime_error("TraceWriter: write to " + path_ +
                                 " failed");
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary), path_(path),
      offset_(sizeof(magic))
{
    if (!in_)
        throw std::runtime_error("TraceReader: cannot open " + path);
    char got[8];
    if (!in_.read(got, 8) || std::memcmp(got, magic, 8) != 0)
        throw std::runtime_error("TraceReader: bad magic in " + path);
}

std::optional<WriteTransaction>
TraceReader::read()
{
    // Pull the whole record in one read so a file ending mid-record
    // is distinguishable from a clean EOF: a partial read is data
    // loss (an interrupted collection run, a bad copy) and must not
    // silently pass for a shorter trace.
    std::array<char, recordSize> buf;
    in_.read(buf.data(), buf.size());
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0)
        return std::nullopt;
    if (got < buf.size()) {
        throw std::runtime_error(
            "TraceReader: truncated record at byte offset " +
            std::to_string(offset_) + " in " + path_ + " (got " +
            std::to_string(got) + " of " +
            std::to_string(buf.size()) + " record bytes)");
    }
    WriteTransaction txn;
    txn.lineAddr = decodeU64(buf.data());
    for (unsigned w = 0; w < lineWords; ++w)
        txn.oldData.setWord(w, decodeU64(buf.data() + 8 + 8 * w));
    for (unsigned w = 0; w < lineWords; ++w)
        txn.newData.setWord(
            w, decodeU64(buf.data() + 8 + 8 * (lineWords + w)));
    offset_ += buf.size();
    return txn;
}

} // namespace wlcrc::trace
