#include "value_model.hh"

#include <bit>
#include <cassert>
#include <cmath>

namespace wlcrc::trace
{

const char *
lineTypeName(LineType t)
{
    static const char *names[numLineTypes] = {
        "zeroish", "integer", "mid6", "mid7", "float", "random"};
    return names[static_cast<unsigned>(t)];
}

uint64_t
ValueModel::smallPositive(Rng &rng)
{
    // Narrow positive integer: width skewed toward small values.
    const unsigned width =
        4 + static_cast<unsigned>(rng.nextBelow(25)); // 4..28 bits
    return rng.next() >> (64 - width);
}

uint64_t
ValueModel::smallNegative(Rng &rng)
{
    const unsigned width =
        4 + static_cast<unsigned>(rng.nextBelow(25));
    const uint64_t mag = (rng.next() >> (64 - width)) | 1;
    return ~mag + 1; // two's complement: long run of leading 1s
}

uint64_t
ValueModel::pointerLike(Rng &rng)
{
    // Two distinct user-space regions ("heap" vs "stack") whose
    // bases differ by more than any BDI delta, with enough entropy
    // in bits 32..43 that neither 8-byte nor 4-byte BDI chunking
    // finds a single base, 8-byte aligned. MSB run stays >= 17 so
    // WLC still compresses pointer-heavy lines.
    static constexpr uint64_t heap = 0x0000500000000000ull;
    static constexpr uint64_t stack = 0x00007f0000000000ull;
    const uint64_t base = rng.chance(0.5) ? heap : stack;
    return base | (rng.next() & 0x00000ffffffffff8ull);
}

uint64_t
ValueModel::packedShorts(Rng &rng, unsigned field_bits)
{
    // Four independent signed 16-bit struct fields. The top field
    // stays narrow so the word keeps an MSB run >= 9 and WLC still
    // compresses the line; mixed field signs create exactly the
    // sub-word diversity that favours 16-bit coset granularity.
    auto field = [&rng](unsigned max_bits) -> uint64_t {
        const uint64_t mag =
            rng.nextBelow(uint64_t{1} << (max_bits - 1));
        const int64_t v = rng.chance(0.5)
                              ? -static_cast<int64_t>(mag) - 1
                              : static_cast<int64_t>(mag);
        return static_cast<uint64_t>(v) & 0xffff;
    };
    return (field(6) << 48) | (field(field_bits) << 32) |
           (field(field_bits) << 16) | field(field_bits);
}

uint64_t
ValueModel::packedInts(Rng &rng)
{
    // Two independent signed 32-bit fields; the upper one narrow
    // enough to preserve WLC compressibility at k = 9.
    auto field = [&rng](unsigned max_bits) -> uint64_t {
        const uint64_t mag =
            rng.nextBelow(uint64_t{1} << (max_bits - 1));
        const int64_t v = rng.chance(0.5)
                              ? -static_cast<int64_t>(mag) - 1
                              : static_cast<int64_t>(mag);
        return static_cast<uint64_t>(v) & 0xffffffff;
    };
    return (field(22) << 32) | field(28);
}

uint64_t
ValueModel::packedMidShorts(Rng &rng, unsigned run)
{
    // An array-of-shorts word whose *top* field pins the word's MSB
    // run to exactly `run` (so the line keeps its WLC-k signature)
    // while the other three fields are independent signed shorts.
    // Single-field rewrites of such words are where 16-bit coset
    // granularity beats 32-bit: only the touched field's block must
    // switch mappings.
    auto field = [&rng]() -> uint64_t {
        const uint64_t mag = rng.nextBelow(uint64_t{1} << 12);
        const int64_t v = rng.chance(0.5)
                              ? -static_cast<int64_t>(mag) - 1
                              : static_cast<int64_t>(mag);
        return static_cast<uint64_t>(v) & 0xffff;
    };
    // Top field: bits 15..(16-run) equal, bit (15-run) differs.
    const uint64_t low =
        rng.nextBelow(uint64_t{1} << (15 - run));
    uint64_t top = (uint64_t{1} << (15 - run)) | low;
    if (rng.chance(0.5))
        top = ~top & 0xffff;
    return (top << 48) | (field() << 32) | (field() << 16) |
           field();
}

uint64_t
ValueModel::midRun(Rng &rng, unsigned run_lo, unsigned run_hi)
{
    // MSB run of exactly r in [run_lo, run_hi]: top r bits equal, bit
    // 63-r differs, the rest random.
    const unsigned r =
        run_lo + static_cast<unsigned>(rng.nextBelow(
                     run_hi - run_lo + 1));
    const unsigned sign = rng.chance(0.5) ? 1 : 0;
    uint64_t low = rng.next() & ((uint64_t{1} << (63 - r)) - 1);
    uint64_t word = (uint64_t{1} << (63 - r)) | low; // run of 0s
    if (sign)
        word = ~word; // run of 1s
    return word;
}

uint64_t
ValueModel::doubleLike(Rng &rng)
{
    // Doubles spanning typical simulation magnitudes; the exponent
    // bits make the MSB run 1-2 bits, defeating WLC at any k >= 4.
    const double mag = std::pow(10.0, -3.0 + 9.0 * rng.nextDouble());
    const double v = (rng.chance(0.3) ? -1.0 : 1.0) *
                     (0.1 + rng.nextDouble()) * mag;
    return std::bit_cast<uint64_t>(v);
}

uint64_t
ValueModel::generateWord(LineType t, Rng &rng)
{
    const double p = rng.nextDouble();
    switch (t) {
      case LineType::Zeroish:
        if (p < 0.55)
            return 0;
        if (p < 0.80)
            return rng.next() >> (64 - 14); // tiny positive
        if (p < 0.88)
            return smallNegative(rng) | ~uint64_t{0} << 14;
        return packedShorts(rng, 8); // tiny fields: FPC-friendly
      case LineType::Integer:
        if (p < 0.30)
            return pointerLike(rng);
        if (p < 0.45)
            return smallPositive(rng);
        if (p < 0.55)
            return smallNegative(rng);
        if (p < 0.83)
            return packedShorts(rng, 13);
        if (p < 0.95)
            return packedInts(rng);
        return 0;
      case LineType::Mid6:
        if (p < 0.75)
            return packedMidShorts(rng, 6);
        if (p < 0.85)
            return midRun(rng, 6, 6);
        if (p < 0.95)
            return midRun(rng, 7, 8);
        return smallPositive(rng);
      case LineType::Mid7:
        if (p < 0.75)
            return packedMidShorts(rng, 7);
        if (p < 0.85)
            return midRun(rng, 7, 7);
        if (p < 0.95)
            return midRun(rng, 8, 8);
        return smallPositive(rng);
      case LineType::Float:
        if (p < 0.80)
            return doubleLike(rng);
        return 0;
      case LineType::Random:
      default:
        return rng.next();
    }
}

Line512
ValueModel::generateLine(LineType t, Rng &rng)
{
    Line512 line;
    for (unsigned w = 0; w < lineWords; ++w)
        line.setWord(w, generateWord(t, rng));
    return line;
}

uint64_t
ValueModel::mutateWord(LineType t, uint64_t word, Rng &rng)
{
    // Fill/clear transitions are common across integer-typed memory
    // (memset(0)/memset(0xff), -1 sentinels, bitmap words). They
    // rewrite whole cells between the 00 and 11 symbols — the
    // transitions coset candidate C2 turns from S3 programs into S1
    // programs.
    if (t == LineType::Zeroish || t == LineType::Integer ||
        t == LineType::Mid6 || t == LineType::Mid7) {
        const double p = rng.nextDouble();
        if (p < 0.07)
            return 0;
        if (p < 0.14)
            return ~uint64_t{0};
    }
    switch (t) {
      case LineType::Zeroish:
      case LineType::Integer: {
        // Sign transitions are frequent in real integer data
        // (accumulators crossing zero, deltas, flags): they rewrite
        // the whole sign-extension region (00 <-> 11 symbol runs),
        // which is exactly where coset remapping pays off.
        if (rng.chance(0.3)) {
            const bool was_negative = word >> 63;
            return was_negative ? smallPositive(rng)
                                : smallNegative(rng);
        }
        // Otherwise integers evolve by small deltas (loop counters,
        // pointer bumps) or are overwritten outright.
        if (word != 0 && rng.chance(0.55)) {
            const int64_t delta =
                static_cast<int64_t>(rng.nextBelow(256)) - 128;
            return word + static_cast<uint64_t>(delta);
        }
        return generateWord(t, rng);
      }
      case LineType::Mid6:
      case LineType::Mid7: {
        const unsigned run = t == LineType::Mid6 ? 6 : 7;
        const double q = rng.nextDouble();
        if (q < 0.65) {
            // Single-field rewrite: replace one 16-bit field with a
            // fresh signed short (or, for the top field, a fresh
            // run-preserving value). Only one 16-bit block changes,
            // often flipping that block's preferred coset.
            const unsigned f =
                static_cast<unsigned>(rng.nextBelow(4));
            const uint64_t fresh = packedMidShorts(rng, run);
            const uint64_t mask = uint64_t{0xffff} << (f * 16);
            return (word & ~mask) | (fresh & mask);
        }
        if (q < 0.75) {
            // Byte-fill of the low half (buffer refill patterns).
            const uint64_t b = rng.next() & 0xff;
            return (word & ~uint64_t{0xffffffff}) |
                   (b * 0x01010101ull);
        }
        if (q < 0.85) {
            // Noisy low half.
            return (word & ~uint64_t{0xffffffff}) |
                   (rng.next() & 0xffffffff);
        }
        return generateWord(t, rng);
      }
      case LineType::Float:
      case LineType::Random:
      default:
        return generateWord(t, rng);
    }
}

} // namespace wlcrc::trace
