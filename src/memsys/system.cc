#include "system.hh"

namespace wlcrc::memsys
{

PcmSystem::PcmSystem(const pcm::SystemConfig &cfg,
                     const coset::LineCodec &codec,
                     const pcm::WriteUnit &unit,
                     const trace::WorkloadProfile &profile,
                     uint64_t seed)
    : cfg_(cfg), codec_(codec), l2_(cfg),
      controller_(cfg, codec, unit, seed ^ 0xc0ffee), profile_(profile),
      rng_(seed)
{
}

void
PcmSystem::pushWriteback(const trace::WriteTransaction &txn)
{
    while (!controller_.enqueueWrite(txn))
        controller_.tick();
}

void
PcmSystem::access()
{
    // Address with reuse: 80 % of accesses hit the hot fifth.
    const uint64_t n = profile_.footprintLines;
    const uint64_t hot = std::max<uint64_t>(1, n / 5);
    const uint64_t addr = rng_.chance(0.8)
                              ? rng_.nextBelow(hot)
                              : hot + rng_.nextBelow(n - hot);

    // Stable per-line data class, as in the trace synthesizer.
    auto type_it = lineTypes_.find(addr);
    if (type_it == lineTypes_.end()) {
        double p = rng_.nextDouble();
        unsigned t = 0;
        for (; t + 1 < trace::numLineTypes; ++t) {
            p -= profile_.lineTypeProbs[t];
            if (p < 0)
                break;
        }
        type_it = lineTypes_
                      .emplace(addr, static_cast<trace::LineType>(t))
                      .first;
        // Seed the memory image so first fills see realistic data.
        l2_.setMemoryImage(
            addr, trace::ValueModel::generateLine(type_it->second,
                                                  rng_));
    }

    // Store ratio tracks memory intensity: write-heavy phases drive
    // the paper's write-energy results.
    const bool is_write =
        rng_.chance(profile_.highIntensity ? 0.45 : 0.30);
    std::optional<trace::WriteTransaction> wb;
    if (is_write) {
        ++stores_;
        const Line512 *cur = l2_.peek(addr);
        Line512 base = cur ? *cur : l2_.memoryImage(addr);
        for (unsigned w = 0; w < lineWords; ++w) {
            if (rng_.chance(profile_.wordChangeProb)) {
                base.setWord(w, trace::ValueModel::mutateWord(
                                    type_it->second, base.word(w),
                                    rng_));
            }
        }
        wb = l2_.access(addr, true, &base);
    } else {
        ++loads_;
        const bool miss = l2_.peek(addr) == nullptr;
        wb = l2_.access(addr, false);
        if (miss)
            controller_.enqueueRead(addr); // demand fill from PCM
    }
    if (wb)
        pushWriteback(*wb);

    // Core-side accesses arrive faster than the controller cycle;
    // tick once per access to keep queues moving.
    controller_.tick();
}

void
PcmSystem::runAccesses(uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        access();
}

void
PcmSystem::finish()
{
    for (const auto &txn : l2_.flush())
        pushWriteback(txn);
    controller_.drain();
}

} // namespace wlcrc::memsys
