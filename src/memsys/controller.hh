/**
 * @file
 * PCM memory controller: per-bank timing, a 32-entry write queue with
 * the paper's scheduling policy (reads prioritised; writes drained
 * ahead of reads once the queue passes 80 % occupancy — "write
 * pausing"), and the encoding pipeline at the memory interface
 * (Figure 7: the codec sits between the controller and the cells).
 */

#ifndef WLCRC_MEMSYS_CONTROLLER_HH
#define WLCRC_MEMSYS_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "coset/codec.hh"
#include "memsys/address.hh"
#include "pcm/config.hh"
#include "pcm/device.hh"
#include "stats/stats.hh"
#include "trace/transaction.hh"

namespace wlcrc::memsys
{

/** Controller statistics. */
struct ControllerStats
{
    uint64_t readsServiced = 0;
    uint64_t writesServiced = 0;
    uint64_t drainCycles = 0;   //!< cycles spent in forced drain
    uint64_t stallCycles = 0;   //!< enqueue attempts while full
    stats::RunningStat readLatency;
    stats::RunningStat writeQueueDepth;
};

/** Cycle-based PCM memory controller with an encoding pipeline. */
class MemoryController
{
  public:
    MemoryController(const pcm::SystemConfig &cfg,
                     const coset::LineCodec &codec,
                     const pcm::WriteUnit &unit, uint64_t seed = 11);

    /**
     * Try to enqueue a write-back. @return false (and count a stall)
     * if the write queue is full; the caller retries next cycle.
     */
    bool enqueueWrite(const trace::WriteTransaction &txn);

    /** Enqueue a demand read of @p line_addr. */
    void enqueueRead(uint64_t line_addr);

    /** Advance one controller cycle. */
    void tick();

    /** Run until both queues are empty. @return cycles consumed. */
    uint64_t drain();

    bool
    queuesEmpty() const
    {
        return readQueue_.empty() && writeQueue_.empty();
    }
    /** Current write queue occupancy (0..1). */
    double writeQueueFill() const;

    const ControllerStats &stats() const { return stats_; }
    const pcm::Device &device() const { return device_; }
    pcm::Device &device() { return device_; }
    uint64_t cycle() const { return cycle_; }

  private:
    struct ReadReq
    {
        uint64_t addr;
        uint64_t issued;
    };

    /** Service one request on bank @p bank if one is eligible. */
    void serviceBank(unsigned bank);

    pcm::SystemConfig cfg_;
    AddressMapper mapper_;
    const coset::LineCodec &codec_;
    pcm::Device device_;
    std::deque<ReadReq> readQueue_;
    std::deque<trace::WriteTransaction> writeQueue_;
    std::vector<uint64_t> bankBusyUntil_;
    bool draining_ = false;
    uint64_t cycle_ = 0;
    ControllerStats stats_;
};

} // namespace wlcrc::memsys

#endif // WLCRC_MEMSYS_CONTROLLER_HH
