#include "controller.hh"

#include <cassert>

namespace wlcrc::memsys
{

MemoryController::MemoryController(const pcm::SystemConfig &cfg,
                                   const coset::LineCodec &codec,
                                   const pcm::WriteUnit &unit,
                                   uint64_t seed)
    : cfg_(cfg), mapper_(cfg), codec_(codec),
      device_(codec.cellCount(), unit, seed),
      bankBusyUntil_(cfg.totalBanks(), 0)
{
}

bool
MemoryController::enqueueWrite(const trace::WriteTransaction &txn)
{
    if (writeQueue_.size() >= cfg_.writeQueueEntries) {
        ++stats_.stallCycles;
        return false;
    }
    writeQueue_.push_back(txn);
    return true;
}

void
MemoryController::enqueueRead(uint64_t line_addr)
{
    readQueue_.push_back({line_addr, cycle_});
}

double
MemoryController::writeQueueFill() const
{
    return static_cast<double>(writeQueue_.size()) /
           static_cast<double>(cfg_.writeQueueEntries);
}

void
MemoryController::serviceBank(unsigned bank)
{
    if (bankBusyUntil_[bank] > cycle_)
        return;

    const bool prefer_writes = draining_ || readQueue_.empty();

    if (!prefer_writes) {
        for (auto it = readQueue_.begin(); it != readQueue_.end();
             ++it) {
            if (mapper_.locate(it->addr).flatBank != bank)
                continue;
            bankBusyUntil_[bank] = cycle_ + cfg_.readLatencyCycles;
            stats_.readLatency.add(static_cast<double>(
                cycle_ + cfg_.readLatencyCycles - it->issued));
            ++stats_.readsServiced;
            readQueue_.erase(it);
            return;
        }
    }
    for (auto it = writeQueue_.begin(); it != writeQueue_.end();
         ++it) {
        if (mapper_.locate(it->lineAddr).flatBank != bank)
            continue;
        // Encoding pipeline: differentiate against the stored line
        // and program through the write unit (Figure 7).
        if (!device_.hasLine(it->lineAddr)) {
            auto &stored = device_.line(it->lineAddr);
            stored = codec_.encode(it->oldData, stored).toVector();
        }
        const auto &stored = device_.line(it->lineAddr);
        device_.write(it->lineAddr,
                      codec_.encode(it->newData, stored));
        bankBusyUntil_[bank] = cycle_ + cfg_.writeLatencyCycles;
        ++stats_.writesServiced;
        writeQueue_.erase(it);
        return;
    }
}

void
MemoryController::tick()
{
    stats_.writeQueueDepth.add(
        static_cast<double>(writeQueue_.size()));
    // Write pausing policy: reads win unless the write queue is past
    // the drain threshold (with hysteresis down to 25 %).
    if (draining_ && writeQueueFill() < 0.25)
        draining_ = false;
    if (!draining_ && writeQueueFill() >= cfg_.writeDrainThreshold)
        draining_ = true;
    if (draining_)
        ++stats_.drainCycles;
    for (unsigned bank = 0; bank < bankBusyUntil_.size(); ++bank)
        serviceBank(bank);
    ++cycle_;
}

uint64_t
MemoryController::drain()
{
    const uint64_t start = cycle_;
    // Bounded by queue size * write latency; guard against livelock.
    const uint64_t limit =
        cycle_ + (writeQueue_.size() + readQueue_.size() + 1) *
                     (cfg_.writeLatencyCycles + 1) * 4;
    while (!queuesEmpty() && cycle_ < limit)
        tick();
    assert(queuesEmpty() && "controller failed to drain");
    return cycle_ - start;
}

} // namespace wlcrc::memsys
