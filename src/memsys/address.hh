/**
 * @file
 * Physical address decomposition for the Table II PCM topology:
 * 2 channels x 2 DIMMs x 16 banks, 64 B lines. Low-order line bits
 * interleave across channels, then DIMMs, then banks, maximising
 * write parallelism for streaming traffic.
 */

#ifndef WLCRC_MEMSYS_ADDRESS_HH
#define WLCRC_MEMSYS_ADDRESS_HH

#include <cstdint>

#include "pcm/config.hh"

namespace wlcrc::memsys
{

/** Decoded location of a memory line. */
struct LineLocation
{
    unsigned channel;
    unsigned dimm;
    unsigned bank;
    uint64_t row;
    /** Flat bank id across the whole system. */
    unsigned flatBank;
};

/** Maps line addresses onto the PCM topology. */
class AddressMapper
{
  public:
    explicit AddressMapper(const pcm::SystemConfig &cfg) : cfg_(cfg) {}

    LineLocation
    locate(uint64_t line_addr) const
    {
        LineLocation loc;
        uint64_t a = line_addr;
        loc.channel = static_cast<unsigned>(a % cfg_.channels);
        a /= cfg_.channels;
        loc.dimm = static_cast<unsigned>(a % cfg_.dimmsPerChannel);
        a /= cfg_.dimmsPerChannel;
        loc.bank = static_cast<unsigned>(a % cfg_.banksPerDimm);
        loc.row = a / cfg_.banksPerDimm;
        loc.flatBank =
            (loc.channel * cfg_.dimmsPerChannel + loc.dimm) *
                cfg_.banksPerDimm +
            loc.bank;
        return loc;
    }

    unsigned totalBanks() const { return cfg_.totalBanks(); }

  private:
    pcm::SystemConfig cfg_;
};

} // namespace wlcrc::memsys

#endif // WLCRC_MEMSYS_ADDRESS_HH
