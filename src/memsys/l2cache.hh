/**
 * @file
 * Private L2 cache model (Table II: 2 MB, 8-way, 64 B lines,
 * write-back, LRU). Stores full line payloads so that dirty evictions
 * emit complete (old, new) write transactions toward PCM — the same
 * information the paper's traces record.
 */

#ifndef WLCRC_MEMSYS_L2CACHE_HH
#define WLCRC_MEMSYS_L2CACHE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/line512.hh"
#include "pcm/config.hh"
#include "trace/transaction.hh"

namespace wlcrc::memsys
{

/** Set-associative write-back cache over 512-bit lines. */
class L2Cache
{
  public:
    explicit L2Cache(const pcm::SystemConfig &cfg);

    /**
     * Perform one access.
     *
     * @param line_addr  line-aligned address.
     * @param is_write   store (marks the line dirty) vs load.
     * @param write_data line payload after the store (full-line
     *                   semantics; partial stores are modelled by
     *                   the caller mutating the current contents).
     * @return a PCM write transaction if a dirty line was evicted.
     */
    std::optional<trace::WriteTransaction>
    access(uint64_t line_addr, bool is_write,
           const Line512 *write_data = nullptr);

    /** Current cached contents of a line, if resident. */
    const Line512 *peek(uint64_t line_addr) const;

    /**
     * Flush every dirty line (end-of-run), returning the resulting
     * write transactions.
     */
    std::vector<trace::WriteTransaction> flush();

    /** The memory image as PCM currently sees it (pre-writeback). */
    const Line512 &memoryImage(uint64_t line_addr) const;
    void setMemoryImage(uint64_t line_addr, const Line512 &data);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
        Line512 data;
    };

    unsigned setOf(uint64_t line_addr) const;
    std::optional<trace::WriteTransaction> evict(Way &way,
                                                 unsigned set);

    unsigned sets_;
    unsigned ways_;
    std::vector<Way> entries_; // sets_ x ways_
    std::unordered_map<uint64_t, Line512> memImage_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace wlcrc::memsys

#endif // WLCRC_MEMSYS_L2CACHE_HH
