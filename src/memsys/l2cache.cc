#include "l2cache.hh"

#include <cassert>

namespace wlcrc::memsys
{

namespace
{
const Line512 zeroLine{};
} // namespace

L2Cache::L2Cache(const pcm::SystemConfig &cfg)
    : sets_(static_cast<unsigned>(cfg.l2Bytes /
                                  (cfg.l2Ways * cfg.l2LineBytes))),
      ways_(cfg.l2Ways), entries_(sets_ * ways_)
{
    assert(sets_ > 0);
}

unsigned
L2Cache::setOf(uint64_t line_addr) const
{
    return static_cast<unsigned>(line_addr % sets_);
}

const Line512 &
L2Cache::memoryImage(uint64_t line_addr) const
{
    const auto it = memImage_.find(line_addr);
    return it == memImage_.end() ? zeroLine : it->second;
}

void
L2Cache::setMemoryImage(uint64_t line_addr, const Line512 &data)
{
    memImage_[line_addr] = data;
}

std::optional<trace::WriteTransaction>
L2Cache::evict(Way &way, unsigned set)
{
    if (!way.valid || !way.dirty)
        return std::nullopt;
    const uint64_t addr =
        way.tag * sets_ + set; // inverse of tag/set split
    trace::WriteTransaction txn;
    txn.lineAddr = addr;
    txn.oldData = memoryImage(addr);
    txn.newData = way.data;
    memImage_[addr] = way.data;
    ++writebacks_;
    return txn;
}

std::optional<trace::WriteTransaction>
L2Cache::access(uint64_t line_addr, bool is_write,
                const Line512 *write_data)
{
    ++tick_;
    const unsigned set = setOf(line_addr);
    const uint64_t tag = line_addr / sets_;
    Way *ways = &entries_[set * ways_];

    Way *hit = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            hit = &ways[w];
            break;
        }
    }
    std::optional<trace::WriteTransaction> writeback;
    if (hit) {
        ++hits_;
    } else {
        ++misses_;
        // Victim: invalid way if any, else LRU.
        Way *victim = &ways[0];
        for (unsigned w = 0; w < ways_; ++w) {
            if (!ways[w].valid) {
                victim = &ways[w];
                break;
            }
            if (ways[w].lastUse < victim->lastUse)
                victim = &ways[w];
        }
        writeback = evict(*victim, set);
        victim->valid = true;
        victim->dirty = false;
        victim->tag = tag;
        victim->data = memoryImage(line_addr);
        hit = victim;
    }

    hit->lastUse = tick_;
    if (is_write) {
        assert(write_data && "stores must carry the new payload");
        hit->data = *write_data;
        hit->dirty = true;
    }
    return writeback;
}

const Line512 *
L2Cache::peek(uint64_t line_addr) const
{
    const unsigned set = setOf(line_addr);
    const uint64_t tag = line_addr / sets_;
    const Way *ways = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return &ways[w].data;
    return nullptr;
}

std::vector<trace::WriteTransaction>
L2Cache::flush()
{
    std::vector<trace::WriteTransaction> out;
    for (unsigned set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < ways_; ++w) {
            Way &way = entries_[set * ways_ + w];
            if (auto txn = evict(way, set))
                out.push_back(*txn);
            way.valid = false;
            way.dirty = false;
        }
    }
    return out;
}

} // namespace wlcrc::memsys
