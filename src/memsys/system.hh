/**
 * @file
 * End-to-end system model: a synthetic core access stream feeding the
 * private L2, whose dirty write-backs flow through the memory
 * controller's encoding pipeline into the PCM device. This is the
 * paper's full simulation stack (Section VII) with the Simics
 * front-end replaced by the synthetic workload models.
 */

#ifndef WLCRC_MEMSYS_SYSTEM_HH
#define WLCRC_MEMSYS_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "common/rng.hh"
#include "coset/codec.hh"
#include "memsys/controller.hh"
#include "memsys/l2cache.hh"
#include "trace/workload.hh"

namespace wlcrc::memsys
{

/** Full workload -> L2 -> controller -> PCM pipeline. */
class PcmSystem
{
  public:
    /**
     * @param cfg      Table II configuration.
     * @param codec    encoding scheme at the memory interface.
     * @param unit     energy/disturbance models.
     * @param profile  synthetic workload.
     * @param seed     master seed (accesses + disturbance).
     */
    PcmSystem(const pcm::SystemConfig &cfg,
              const coset::LineCodec &codec,
              const pcm::WriteUnit &unit,
              const trace::WorkloadProfile &profile, uint64_t seed);

    /** Execute @p count L2 accesses (loads + stores). */
    void runAccesses(uint64_t count);

    /** Flush the L2 and drain the controller. */
    void finish();

    const MemoryController &controller() const { return controller_; }
    const L2Cache &l2() const { return l2_; }
    uint64_t storesIssued() const { return stores_; }
    uint64_t loadsIssued() const { return loads_; }

  private:
    /** One core access; may trigger a write-back toward PCM. */
    void access();

    /** Push a write-back, ticking the controller until it fits. */
    void pushWriteback(const trace::WriteTransaction &txn);

    pcm::SystemConfig cfg_;
    const coset::LineCodec &codec_;
    L2Cache l2_;
    MemoryController controller_;
    trace::WorkloadProfile profile_;
    Rng rng_;
    std::unordered_map<uint64_t, trace::LineType> lineTypes_;
    uint64_t stores_ = 0;
    uint64_t loads_ = 0;
};

} // namespace wlcrc::memsys

#endif // WLCRC_MEMSYS_SYSTEM_HH
